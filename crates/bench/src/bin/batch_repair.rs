//! Device-repair throughput: many stripes, one failure pattern.
//!
//! The paper's context is whole-system repair ("failures happen in
//! bursts"): when devices die, *every* stripe must be decoded. This
//! experiment measures repair throughput over a batch of stripes,
//! comparing the traditional serial method, PPM per stripe, and the
//! stripe-level batch path (`Decoder::decode_batch`, our extension),
//! with one plan amortized across the whole batch.
//!
//! `cargo run --release -p ppm-bench --bin batch_repair [--stripe-mib N]`

use ppm_bench::{improvement, throughput_mbs, ExpArgs, Table};
use ppm_codes::ErasureCode;
use ppm_core::{encode, Decoder, DecoderConfig, Strategy};
use ppm_gf::Backend;
use ppm_stripe::random_data_stripe;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let (n, r, m, s, z) = (8usize, 16usize, 2usize, 2usize, 1usize);
    let batch = if args.full { 64 } else { 16 };
    let per_stripe = (args.stripe_bytes / 4).max(64 * n * r);

    let code = ppm_codes::SdCode::<u8>::search(n, r, m, s, args.seed, 3).expect("search");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let scenario = code
        .decodable_worst_case(z, &mut rng, 300)
        .expect("scenario");

    // Build and encode the batch.
    let enc = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    let mut pristine = Vec::with_capacity(batch);
    for i in 0..batch {
        let mut stripe = random_data_stripe(&code, per_stripe / (n * r) / 8 * 8, &mut rng);
        encode(&code, &enc, &mut stripe).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        pristine.push(stripe);
    }
    let total_bytes: usize = pristine.iter().map(|s| s.total_bytes()).sum();
    println!(
        "repairing {batch} stripes x {:.1} MiB ({} lost sectors each, {})\n",
        pristine[0].total_bytes() as f64 / (1 << 20) as f64,
        scenario.len(),
        code.name()
    );

    let t = Table::new(&["method", "time", "MB/s", "improvement"]);
    let mut base_time = None;
    for (label, strategy, threads) in [
        (
            "traditional, per stripe",
            Strategy::TraditionalNormal,
            1usize,
        ),
        ("PPM, per stripe (T=1)", Strategy::PpmAuto, 1),
        ("PPM, batch over stripes", Strategy::PpmAuto, args.threads),
    ] {
        let dec = Decoder::new(DecoderConfig {
            threads,
            backend: Backend::Auto,
        });
        let plan = dec.plan(&h, &scenario, strategy).expect("plan");
        let mut best = f64::INFINITY;
        for _ in 0..args.reps {
            let mut broken: Vec<_> = pristine.clone();
            for b in &mut broken {
                b.erase(&scenario);
            }
            let t0 = Instant::now();
            dec.decode_batch(&plan, &mut broken).expect("repair");
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(broken, pristine, "{label}: repair must be bit-exact");
        }
        let imp = base_time.map_or(0.0, |b| improvement(b, best));
        if base_time.is_none() {
            base_time = Some(best);
        }
        t.row(&[
            label.to_string(),
            format!("{:.2}ms", best * 1e3),
            format!("{:.0}", throughput_mbs(total_bytes, best)),
            format!("{:+.1}%", 100.0 * imp),
        ]);
    }
    println!(
        "\n(single-core host: the batch path shows the plan-amortization\n\
         effect here; on a multi-core machine it additionally spreads\n\
         stripes across cores — see DESIGN.md §3)"
    );
}
