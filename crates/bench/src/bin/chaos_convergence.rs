//! Chaos convergence: cluster repair under injected network faults.
//!
//! For a matrix of seeds × fault profiles, run the simulated cluster
//! repair (`ppm_cluster::run_sim`) through a `ChaosTransport` that
//! drops, corrupts, truncates, duplicates, reorders, delays, and hangs
//! frames, and check the two properties the chaos hardening promises:
//!
//! 1. **Convergence** — every repaired stripe is bit-identical to the
//!    single-node reference, no matter what the network did. Hung
//!    workers fail over (`Adopt` re-homing or degraded local repair);
//!    corruption is caught by the v2 frame envelope, never decoded.
//! 2. **Bounded amplification** — the retry/hedge machinery pays for
//!    survival with extra frames, but only boundedly so: each chaotic
//!    run's frame count must stay under `AMPLIFICATION_BOUND ×` the
//!    clean run of the same configuration.
//!
//! Results land in `BENCH_chaos_convergence.json`; each matrix cell
//! also prints a greppable
//! `chaos-convergence profile=... seed=... identical=true ...` line.
//!
//! `cargo run --release -p ppm-bench --bin chaos_convergence [--smoke] [--seed S] [--threads T]`

use ppm_bench::{write_bench_json, ExpArgs, Table};
use ppm_cluster::{run_sim, ChaosConfig, ChaosRates, RepairMode, RetryPolicy, SimConfig};
use ppm_codes::SdCode;

/// A chaotic run may move at most this many times the frames of the
/// clean run of the same configuration. The bound is deliberately
/// generous — at the matrix's rates (≤ 30% total fault mass) the
/// measured amplification sits around 1.1–1.8× — so a regression that
/// loses retry bookkeeping (e.g. retrying forever, or re-shipping whole
/// plans per duplicate) trips it loudly without flaking on seed luck.
const AMPLIFICATION_BOUND: f64 = 4.0;

fn profiles() -> Vec<(&'static str, ChaosRates)> {
    vec![
        (
            "drop-heavy",
            ChaosRates {
                drop: 0.20,
                delay: 0.05,
                ..ChaosRates::default()
            },
        ),
        (
            "corrupt-heavy",
            ChaosRates {
                corrupt: 0.20,
                truncate: 0.05,
                ..ChaosRates::default()
            },
        ),
        (
            "straggler-heavy",
            ChaosRates {
                delay: 0.25,
                reorder: 0.08,
                duplicate: 0.05,
                ..ChaosRates::default()
            },
        ),
        (
            "partition",
            ChaosRates {
                drop: 0.10,
                hang: 0.02,
                ..ChaosRates::default()
            },
        ),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).expect("paper SD code");
    let seeds: Vec<u64> = (0..if args.smoke { 2 } else { 3 })
        .map(|i| args.seed + i)
        .collect();
    let base = SimConfig {
        workers: 3,
        stripes: 1_000_000,
        damaged: if args.smoke { 6 } else { 12 },
        scenarios: 3,
        sector_bytes: if args.smoke { 512 } else { 4096 },
        threads: args.threads.max(1),
        retry: RetryPolicy::aggressive(),
        ..SimConfig::default()
    };
    println!(
        "# Chaos convergence: {} workers, {} damaged stripes, {} B sectors, \
         seeds {seeds:?}, amplification bound {AMPLIFICATION_BOUND}x\n",
        base.workers, base.damaged, base.sector_bytes
    );

    let t = Table::new(&[
        "profile",
        "seed",
        "identical",
        "injected",
        "retries",
        "hedges won",
        "caught",
        "failovers",
        "amplification",
    ]);
    let mut rows = Vec::new();
    for (profile, rates) in profiles() {
        for &seed in &seeds {
            let clean = SimConfig { seed, ..base };
            let chaotic = SimConfig {
                chaos: Some(ChaosConfig {
                    seed: seed ^ 0xC4A0_57AE,
                    rates,
                    delay_ms: 5,
                }),
                ..clean
            };
            let reference = run_sim(&code, &clean, RepairMode::Partial)
                .unwrap_or_else(|e| panic!("{profile}/{seed}: clean sim failed: {e}"));
            let report = run_sim(&code, &chaotic, RepairMode::Partial)
                .unwrap_or_else(|e| panic!("{profile}/{seed}: chaotic sim failed: {e}"));

            // Property 1: chaos changes the cost, never the bytes.
            assert!(reference.identical, "{profile}/{seed}: clean run diverged");
            assert!(report.identical, "{profile}/{seed}: chaotic run diverged");
            assert_eq!(
                report.repaired, chaotic.damaged,
                "{profile}/{seed}: repairs went missing"
            );
            assert!(
                report.chaos.injected.total() > 0,
                "{profile}/{seed}: chaos profile never fired"
            );
            if rates.corrupt > 0.0 {
                assert!(
                    report.chaos.corrupt_frames_caught > 0,
                    "{profile}/{seed}: corruption was injected but never caught"
                );
            }
            if rates.hang > 0.0 && report.chaos.workers_declared_dead > 0 {
                assert!(
                    report.chaos.redispatches + report.chaos.degraded_local > 0,
                    "{profile}/{seed}: dead workers but no failover"
                );
            }

            // Property 2: bounded retry amplification.
            let amplification = report.traffic.frames as f64 / reference.traffic.frames as f64;
            assert!(
                amplification <= AMPLIFICATION_BOUND,
                "{profile}/{seed}: amplification {amplification:.2} exceeds \
                 bound {AMPLIFICATION_BOUND}"
            );

            let failovers = report.chaos.redispatches + report.chaos.degraded_local;
            t.row(&[
                profile.to_string(),
                seed.to_string(),
                report.identical.to_string(),
                report.chaos.injected.total().to_string(),
                report.chaos.retries.to_string(),
                report.chaos.hedges_won.to_string(),
                report.chaos.corrupt_frames_caught.to_string(),
                failovers.to_string(),
                format!("{amplification:.2}"),
            ]);
            println!(
                "chaos-convergence profile={profile} seed={seed} identical={} \
                 injected={} retries={} timeouts={} hedges_won={} corrupt_caught={} \
                 dups_dropped={} failovers={failovers} workers_dead={} amplification={amplification:.3}",
                report.identical,
                report.chaos.injected.total(),
                report.chaos.retries,
                report.chaos.timeouts,
                report.chaos.hedges_won,
                report.chaos.corrupt_frames_caught,
                report.chaos.dup_frames_dropped,
                report.chaos.workers_declared_dead,
            );
            rows.push(format!(
                "{{\"profile\":\"{profile}\",\"seed\":{seed},\
                 \"amplification\":{amplification:.4},\
                 \"clean_frames\":{},\"chaotic_frames\":{},\"report\":{}}}",
                reference.traffic.frames,
                report.traffic.frames,
                report.to_json(),
            ));
        }
    }

    let json = format!(
        "{{\"workers\":{},\"damaged\":{},\"sector_bytes\":{},\
         \"amplification_bound\":{AMPLIFICATION_BOUND},\"cells\":[{}]}}",
        base.workers,
        base.damaged,
        base.sector_bytes,
        rows.join(",")
    );
    let path = write_bench_json("chaos_convergence", &json);
    println!("\nwrote {}", path.display());
}
