//! Figure 11: PPM improvement for LRC codes across storage cost.
//!
//! The paper sweeps storage cost 1.1 .. 1.7 twice — once at fixed stripe
//! size (32 MB) and once at fixed strip size (64 MB) — decoding the
//! maximum tolerable outage. Improvement range reported: 16.28% .. 36.71%,
//! smaller than SD's because LRC's parallel (local-repair) portion is a
//! smaller share of the decode.
//!
//! Storage-cost points use l = 2, g = 2 with k ∈ {40, 14, 8, 6}
//! (costs 1.10, 1.29, 1.50, 1.67).
//!
//! `cargo run --release -p ppm-bench --bin fig11 [--stripe-mib 32] [--full]`

use ppm_bench::{improvement, modeled_decode_time, ExpArgs, Table};
use ppm_core::Strategy;

const SPAWN_OVERHEAD: f64 = 15e-6;

fn run_panel(label: &str, stripe_bytes_for: impl Fn(usize) -> usize, args: &ExpArgs) -> Vec<f64> {
    // (k, l, g) tuples hitting the paper's storage-cost axis.
    let configs: [(usize, usize, usize); 4] = [(40, 2, 2), (14, 2, 2), (8, 2, 2), (6, 2, 2)];
    let r = 16usize;
    let sim_cores = 4usize;

    println!("\n# {label}");
    let t = Table::new(&["cost", "(k,l,g)", "C1 time", "impr T=1", "impr T=4*", "p"]);
    let mut imps = Vec::new();
    for &(k, l, g) in &configs {
        let n = k + l + g;
        let Some(prep) = ppm_bench::prepare_lrc(k, l, g, r, stripe_bytes_for(n), args.seed) else {
            t.row(&[
                format!("{:.2}", n as f64 / k as f64),
                format!("({k},{l},{g})"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let (base, _) = ppm_bench::time_plan(&prep, Strategy::TraditionalNormal, 1, args.reps);
        let (opt, plan) = ppm_bench::time_plan(&prep, Strategy::PpmAuto, 1, args.reps);
        let modeled = modeled_decode_time(&plan, opt, args.threads, sim_cores, SPAWN_OVERHEAD);
        let imp4 = improvement(base, modeled);
        imps.push(imp4);
        t.row(&[
            format!("{:.2}", n as f64 / k as f64),
            format!("({k},{l},{g})"),
            format!("{:.2}ms", base * 1e3),
            format!("{:+.1}%", 100.0 * improvement(base, opt)),
            format!("{:+.1}%", 100.0 * imp4),
            plan.parallelism().to_string(),
        ]);
    }
    imps
}

fn main() {
    let args = ExpArgs::parse();

    // Panel 1: fixed stripe size (paper: 32 MB; default here 4 MiB unless
    // --stripe-mib is given).
    let stripe = args.stripe_bytes;
    let mut all = run_panel(
        &format!("fixed stripe size = {:.0} MiB", args.stripe_mib()),
        |_n| stripe,
        &args,
    );

    // Panel 2: fixed strip size. The paper uses 64 MB per strip, i.e. a
    // 2.75 GB stripe at k=40 — beyond this container's memory budget; we
    // scale the strip down (8 MiB under --full), which preserves the
    // shape since Figure 9 shows the improvement is size-stable beyond
    // 8 MB stripes.
    let strip = if args.full { 8 << 20 } else { stripe / 4 };
    all.extend(run_panel(
        &format!(
            "fixed strip size = {:.1} MiB (stripe = n x strip)",
            strip as f64 / (1 << 20) as f64
        ),
        |n| strip * n,
        &args,
    ));

    let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nLRC improvement range (T=4*): {:+.2}% .. {:+.2}%\n\
         paper: +16.28% .. +36.71% — smaller than SD because LRC's parallel\n\
         (local-repair) portion is a smaller share of the decode.\n\
         (* = simulated 4 cores; see DESIGN.md §3)",
        100.0 * min,
        100.0 * max
    );
}
