//! Plan-cache amortization: cold vs warm decode latency across the
//! paper's code grid.
//!
//! The PPM paper prices a single decode; a repair job decodes the same
//! erasure pattern once per stripe. This experiment measures what the
//! `RepairService` session layer buys: *cold* latency (fresh session —
//! the repair pays the log-table scan, partition, factorization, and
//! plan assembly) against *warm* latency (same session — the plan comes
//! from the cache and buffers from the arena, so the repair is region
//! arithmetic only). The run asserts the warm path is strictly faster
//! and that every warm decode was a cache hit (zero matrix inversions).
//!
//! `cargo run --release -p ppm-bench --bin cache_amortization
//!  [--stripe-mib N] [--reps N] [--threads T] [--seed N] [--smoke]`

use ppm_bench::{ExpArgs, Table};
use ppm_codes::{ErasureCode, FailureScenario, LrcCode, PmdsCode, SdCode};
use ppm_core::{encode, Decoder, DecoderConfig, RepairService};
use ppm_gf::Backend;
use ppm_stripe::random_data_stripe;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

struct Instance {
    code: Box<dyn ErasureCode<u8>>,
    scenario: FailureScenario,
}

/// The SD / PMDS / LRC grid; `--smoke` shrinks the geometries so the CI
/// smoke run finishes in well under a second.
fn grid(seed: u64, smoke: bool) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    let (n, r, m, s) = if smoke { (6, 4, 2, 1) } else { (6, 8, 2, 2) };
    let sd = SdCode::<u8>::with_generator_coeffs(n, r, m, s)
        .or_else(|_| SdCode::<u8>::search(n, r, m, s, seed, 3))
        .expect("SD construction");
    let scenario = sd
        .decodable_worst_case(1, &mut rng, 300)
        .expect("SD worst case");
    out.push(Instance {
        code: Box::new(sd),
        scenario,
    });

    let pmds = PmdsCode::<u8>::search(n, r, m, s, seed, 3).expect("PMDS construction");
    let scenario = (0..100)
        .map(|_| pmds.scattered_scenario(&mut rng))
        .find(|sc| {
            pmds.parity_check_matrix()
                .select_columns(sc.faulty())
                .rank()
                == sc.len()
        })
        .expect("decodable PMDS scenario");
    out.push(Instance {
        code: Box::new(pmds),
        scenario,
    });

    let (k, l, g, rows) = if smoke { (4, 2, 2, 2) } else { (6, 2, 2, 4) };
    let lrc = LrcCode::<u8>::new(k, l, g, rows).expect("LRC construction");
    let scenario = lrc
        .decodable_disk_failures(l + g, &mut rng, 500)
        .expect("LRC disk failures");
    out.push(Instance {
        code: Box::new(lrc),
        scenario,
    });

    out
}

fn main() {
    let args = ExpArgs::parse();
    let config = DecoderConfig {
        threads: args.threads,
        backend: Backend::Auto,
    };
    let cold_runs = args.reps.max(if args.smoke { 2 } else { 3 });
    let warm_reps = args.reps.max(if args.smoke { 5 } else { 10 });

    println!(
        "plan-cache amortization: cold (fresh session) vs warm (cached plan),\n\
         {} cold runs / {} warm reps, T={}, ~{:.1} MiB stripes\n",
        cold_runs,
        warm_reps,
        args.threads,
        args.stripe_mib()
    );

    let t = Table::new(&["code", "lost", "cold", "warm", "warm/cold", "hit rate"]);
    let mut ratio_product = 1.0f64;
    let mut instances = 0usize;

    for inst in grid(args.seed, args.smoke) {
        let code = &*inst.code;
        let scenario = &inst.scenario;
        let sectors = code.layout().sectors();
        let sector_bytes = (args.stripe_bytes / sectors / 8 * 8).max(8);

        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xA5A5);
        let mut pristine = random_data_stripe(&code, sector_bytes, &mut rng);
        let enc = Decoder::new(config);
        encode(&code, &enc, &mut pristine).expect("encode");

        // Cold: every run starts a fresh session, so the repair pays the
        // full plan build (factorization included).
        let mut cold = f64::INFINITY;
        for _ in 0..cold_runs {
            let service = RepairService::new(code, config);
            let mut broken = pristine.clone();
            broken.erase(scenario);
            let t0 = Instant::now();
            let stats = service.repair(&mut broken, scenario).expect("cold repair");
            cold = cold.min(t0.elapsed().as_secs_f64());
            assert_eq!(broken, pristine, "cold repair must be bit-exact");
            assert_eq!(stats.cache.expect("cache stats").misses, 1);
        }

        // Warm: one session, primed once; every timed repair re-uses the
        // cached plan and arena buffers.
        let service = RepairService::new(code, config);
        let mut primer = pristine.clone();
        primer.erase(scenario);
        service.repair(&mut primer, scenario).expect("prime");
        let mut warm = f64::INFINITY;
        for _ in 0..warm_reps {
            let mut broken = pristine.clone();
            broken.erase(scenario);
            let t0 = Instant::now();
            service.repair(&mut broken, scenario).expect("warm repair");
            warm = warm.min(t0.elapsed().as_secs_f64());
            assert_eq!(broken, pristine, "warm repair must be bit-exact");
        }
        let cache = service.cache_stats();
        assert_eq!(cache.misses, 1, "warm decodes must not rebuild the plan");
        assert_eq!(cache.hits, warm_reps as u64, "every warm decode hits");
        assert!(
            warm < cold,
            "{}: warm ({warm:.6}s) must beat cold ({cold:.6}s)",
            code.name()
        );

        let ratio = warm / cold;
        ratio_product *= ratio;
        instances += 1;
        t.row(&[
            code.name(),
            scenario.len().to_string(),
            format!("{:.3}ms", cold * 1e3),
            format!("{:.3}ms", warm * 1e3),
            format!("{ratio:.3}"),
            format!("{:.0}%", 100.0 * cache.hit_rate()),
        ]);
    }

    // The line CI greps for: one geometric-mean ratio across the grid.
    println!(
        "\nwarm/cold ratio (geometric mean over {} instances): {:.3}",
        instances,
        ratio_product.powf(1.0 / instances.max(1) as f64)
    );
}
