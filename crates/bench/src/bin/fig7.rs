//! Figure 7: PPM improvement under different thread budgets `T`.
//!
//! For each SD configuration (stripe 32 MB, r = 16, z = 1 in the paper),
//! decode with the traditional method (C₁, one thread) and with PPM at
//! T = 1, 2, 3, 4. Paper shape: improvement grows with T while
//! T ≤ core-count, then reverses; with m = 1 the optimum is T = 2.
//!
//! The measured column is real wall-clock on this host. Because this
//! evaluation container exposes a single CPU core, thread scaling is also
//! reported from the §III-C execution model calibrated on the measured
//! serial run, for a simulated 4-core machine (the paper's E5-2603) —
//! see DESIGN.md §3.
//!
//! `cargo run --release -p ppm-bench --bin fig7 [--stripe-mib 32] [--full]`

use ppm_bench::{improvement, modeled_decode_time, ExpArgs, Table};
use ppm_core::Strategy;

/// Per-thread spawn/dispatch overhead used by the model; measured rayon
/// dispatch latency is ~10µs per sub-task batch on commodity hardware.
const SPAWN_OVERHEAD: f64 = 15e-6;

fn main() {
    let args = ExpArgs::parse();
    let (r, z) = (16usize, 1usize);
    let sim_cores = 4usize; // the paper's Figure 7 machine: 4-core E5-2603
    let ns: Vec<usize> = if args.full {
        vec![6, 11, 16, 21]
    } else {
        vec![6, 16]
    };
    let ms: Vec<usize> = vec![1, 2, 3];
    let ss: Vec<usize> = if args.full { vec![1, 2, 3] } else { vec![1, 3] };

    println!(
        "# Figure 7: improvement of PPM over traditional (C1) vs T\n\
         # stripe {:.0} MiB, r={r}, z={z}; modeled columns simulate {sim_cores} cores\n",
        args.stripe_mib()
    );
    let t = Table::new(&[
        "config",
        "C1 time",
        "T=1 meas",
        "T=2 model",
        "T=3 model",
        "T=4 model",
        "T=6 model",
    ]);

    for &s in &ss {
        for &m in &ms {
            for &n in &ns {
                if n <= m || s > n - m {
                    continue;
                }
                let Some(prep) = ppm_bench::prepare_sd(n, r, m, s, z, args.stripe_bytes, args.seed)
                else {
                    continue;
                };
                let (base, _) =
                    ppm_bench::time_plan(&prep, Strategy::TraditionalNormal, 1, args.reps);
                let (serial, plan) = ppm_bench::time_plan(&prep, Strategy::PpmAuto, 1, args.reps);
                let model = |threads: usize| {
                    let t = modeled_decode_time(&plan, serial, threads, sim_cores, SPAWN_OVERHEAD);
                    format!("{:+.1}%", 100.0 * improvement(base, t))
                };
                t.row(&[
                    format!("n={n} m={m} s={s}"),
                    format!("{:.2}ms", base * 1e3),
                    format!("{:+.1}%", 100.0 * improvement(base, serial)),
                    model(2),
                    model(3),
                    model(4),
                    model(6),
                ]);
            }
        }
    }
    println!(
        "\npaper: improvement increases with T up to T = corenumbers, then reverses;\n\
         T=2 already averages +46.29% (range +8.45% .. +178.38%)."
    );
}
