//! Shared-session repair throughput: one `RepairService`, many workers.
//!
//! The concurrency story of the session layer, end to end: a ≥10k-stripe
//! repair job is driven through `RepairService::repair_batch` with the
//! plan cache warm, sweeping the stripe-level worker count over
//! {1, 2, 4, 8}. For each point the experiment reports the *measured*
//! throughput in stripes/s and the *modeled* 8-core wall-clock
//! projection (`modeled_batch_time`, calibrated from the measured
//! single-worker run — the evaluation container has one CPU core, so
//! thread scaling is simulated per DESIGN.md §3). The acceptance bar is
//! the modeled 8-worker/1-worker ratio: ≥4× on this job.
//!
//! The run closes with a single-flight demonstration: eight threads
//! released by a barrier against one cold session must produce exactly
//! one plan build (`misses == 1`), the other seven coalescing onto it.
//!
//! `cargo run --release -p ppm-bench --bin throughput [--smoke] [--reps N] [--threads T] [--seed N]`

use ppm_bench::{modeled_batch_time, write_bench_json, ExpArgs, Table};
use ppm_codes::{ErasureCode, FailureScenario, SdCode};
use ppm_core::{Decoder, DecoderConfig, RepairService, Strategy};
use ppm_gf::Backend;
use ppm_stripe::random_data_stripe;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Barrier;
use std::time::Instant;

/// Cores assumed by the modeled projection (the paper's evaluation
/// machines are multi-core; the container is not — DESIGN.md §3).
const MODEL_CORES: usize = 8;

/// Per-worker spawn/steal overhead charged by the model, in seconds.
/// Conservative for `std::thread` on Linux; negligible against the
/// chunk a worker owns in a 10k-stripe job.
const SPAWN_OVERHEAD_SECS: f64 = 50e-6;

fn main() {
    let args = ExpArgs::parse();
    let (n, r, m, s, z) = (6usize, 4usize, 2usize, 1usize, 1usize);
    let batch = if args.smoke { 1_000 } else { 10_000 };
    let sector_bytes = 128usize;

    let code = SdCode::<u8>::search(n, r, m, s, args.seed, 3).expect("search");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let scenario = code
        .decodable_worst_case(z, &mut rng, 300)
        .expect("scenario");

    // Encode the batch through one shared plan (encoding is decoding
    // with every parity sector faulty), small sectors so the job is
    // plan-bound rather than memory-bound.
    let enc = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    let parity = FailureScenario::new(code.parity_sectors());
    let enc_plan = enc
        .plan(&h, &parity, Strategy::PpmAuto)
        .expect("encode plan");
    let mut pristine = Vec::with_capacity(batch);
    for _ in 0..batch {
        let mut stripe = random_data_stripe(&code, sector_bytes, &mut rng);
        enc.decode(&enc_plan, &mut stripe).expect("encode");
        pristine.push(stripe);
    }
    println!(
        "repairing {batch} stripes x {} B sectors ({} lost sectors each, {})\n",
        sector_bytes,
        scenario.len(),
        code.name()
    );

    // threads = 1: with 128 B sectors the intra-stripe thread budget is
    // pure spawn overhead, and it would pollute the single-worker
    // baseline the model calibrates from. This sweep isolates the
    // stripe-level axis; the intra-stripe axis is fig9's experiment.
    let service = RepairService::new(
        &code,
        DecoderConfig {
            threads: 1,
            backend: Backend::Auto,
        },
    );
    // Warm the plan cache so the sweep times repair, not planning.
    {
        let mut warm = pristine[0].clone();
        warm.erase(&scenario);
        service.repair(&mut warm, &scenario).expect("warm repair");
        assert_eq!(warm, pristine[0], "warm repair must be bit-exact");
    }

    let table = Table::new(&[
        "workers",
        "mode",
        "measured",
        "stripes/s",
        "modeled (8-core)",
        "modeled speedup",
    ]);
    let mut serial_secs = None;
    let mut modeled_speedup_at_8 = 1.0;
    let mut json_rows: Vec<String> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut inter = false;
        for _ in 0..args.reps {
            let mut broken = pristine.clone();
            for b in &mut broken {
                b.erase(&scenario);
            }
            let t0 = Instant::now();
            let report = service
                .repair_batch(&mut broken, &scenario, workers)
                .expect("repair_batch");
            best = best.min(t0.elapsed().as_secs_f64());
            inter = report.inter_stripe;
            assert_eq!(
                broken, pristine,
                "{workers}-worker repair must be bit-exact"
            );
        }
        let serial = *serial_secs.get_or_insert(best);
        let per_stripe = serial / batch as f64;
        let modeled =
            modeled_batch_time(batch, per_stripe, workers, MODEL_CORES, SPAWN_OVERHEAD_SECS);
        let speedup = serial / modeled;
        if workers == 8 {
            modeled_speedup_at_8 = speedup;
        }
        table.row(&[
            workers.to_string(),
            if inter {
                "inter-stripe"
            } else {
                "intra-stripe"
            }
            .to_string(),
            format!("{:.2}ms", best * 1e3),
            format!("{:.0}", batch as f64 / best),
            format!("{:.2}ms", modeled * 1e3),
            format!("{:.2}x", speedup),
        ]);
        json_rows.push(format!(
            "{{\"workers\":{workers},\"inter_stripe\":{inter},\"measured_secs\":{best:.6},\
             \"stripes_per_sec\":{:.1},\"modeled_secs\":{modeled:.6},\"modeled_speedup\":{speedup:.4}}}",
            batch as f64 / best
        ));
    }
    let json = format!(
        "{{\"experiment\":\"throughput\",\"seed\":{},\"batch\":{batch},\"sector_bytes\":{sector_bytes},\
         \"model_cores\":{MODEL_CORES},\"sweep\":[{}]}}",
        args.seed,
        json_rows.join(",")
    );
    let json_path = write_bench_json("throughput", &json);
    println!("json: {}", json_path.display());
    println!(
        "\nmodeled {MODEL_CORES}-core projection: 8-worker repair_batch runs \
         {modeled_speedup_at_8:.2}x the single-worker rate (target >=4x: {})",
        if modeled_speedup_at_8 >= 4.0 {
            "met"
        } else {
            "MISSED"
        }
    );
    assert!(
        modeled_speedup_at_8 >= 4.0,
        "modeled 8-worker speedup {modeled_speedup_at_8:.2}x below the 4x bar"
    );

    // Single-flight demonstration: a cold session, eight threads released
    // together on the same key — exactly one factorization may happen.
    let cold = RepairService::new(
        &code,
        DecoderConfig {
            threads: 1,
            backend: Backend::Auto,
        },
    );
    let barrier = Barrier::new(8);
    std::thread::scope(|scope| {
        for stripe in pristine.iter().take(8) {
            let mut broken = stripe.clone();
            let (cold, barrier, scenario) = (&cold, &barrier, &scenario);
            scope.spawn(move || {
                broken.erase(scenario);
                barrier.wait();
                cold.repair(&mut broken, scenario).expect("cold repair");
            });
        }
    });
    let cs = cold.cache_stats();
    assert_eq!(
        cs.misses, 1,
        "single-flight must build the plan exactly once"
    );
    println!(
        "single-flight: 8 concurrent cold repairs -> {} build, {} hits, {} coalesced",
        cs.misses, cs.hits, cs.coalesced
    );
}
