//! PPM across code families: the paper's thesis check.
//!
//! The paper positions PPM as the first general optimization for
//! *asymmetric* parity codes while noting symmetric codes already have
//! dedicated fast paths. Running the same machinery over every family in
//! the workspace shows where each of PPM's two mechanisms bites: the
//! sequence optimization matters most when equations are dense and
//! asymmetric (SD's global sector rows), while the partition gives
//! parallelism everywhere whole rows fail independently.
//!
//! `cargo run --release -p ppm-bench --bin code_families [--stripe-mib N]`

use ppm_bench::{improvement, modeled_decode_time, ExpArgs, Table};
use ppm_codes::{
    ErasureCode, EvenOddCode, FailureScenario, LrcCode, RdpCode, RsCode, SdCode, StarCode,
};
use ppm_core::{encode, Decoder, DecoderConfig, Strategy};
use ppm_gf::{Backend, GfWord};
use ppm_stripe::random_data_stripe;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

const SPAWN_OVERHEAD: f64 = 15e-6;

fn run<W: GfWord, C: ErasureCode<W>>(
    code: &C,
    scenario: FailureScenario,
    args: &ExpArgs,
    t: &Table,
) {
    let layout = code.layout();
    let sector = (args.stripe_bytes / layout.sectors() / 8 * 8).max(8);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut pristine = random_data_stripe(code, sector, &mut rng);
    let decoder = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    encode(code, &decoder, &mut pristine).expect("encode");
    let h = code.parity_check_matrix();

    let time = |strategy: Strategy| {
        let plan = decoder.plan(&h, &scenario, strategy).expect("plan");
        let mut scratch = pristine.clone();
        let mut best = f64::INFINITY;
        for _ in 0..args.reps {
            scratch.erase(&scenario);
            let t0 = Instant::now();
            decoder.decode(&plan, &mut scratch).expect("decode");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        assert!(scratch == pristine, "{}: not bit-exact", code.name());
        (best, plan)
    };

    let (base, _) = time(Strategy::TraditionalNormal);
    let (opt, plan) = time(Strategy::PpmAuto);
    let modeled = modeled_decode_time(&plan, opt, args.threads, 4, SPAWN_OVERHEAD);
    t.row(&[
        code.name(),
        if code.is_symmetric() { "sym" } else { "asym" }.into(),
        scenario.failed_disks(layout).len().to_string(),
        plan.parallelism().to_string(),
        plan.sectors_read().to_string(),
        format!("{:+.1}%", 100.0 * improvement(base, opt)),
        format!("{:+.1}%", 100.0 * improvement(base, modeled)),
    ]);
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "# PPM vs traditional across code families (stripe {:.0} MiB, worst-case outages)\n",
        args.stripe_mib()
    );
    let t = Table::new(&[
        "code",
        "parity",
        "disks",
        "p",
        "reads",
        "impr T=1",
        "impr T=4*",
    ]);
    let mut rng = StdRng::seed_from_u64(args.seed);

    let sd = SdCode::<u8>::search(8, 16, 2, 2, args.seed, 3).unwrap();
    let sc = sd.decodable_worst_case(1, &mut rng, 300).unwrap();
    run(&sd, sc, &args, &t);

    let lrc = LrcCode::<u8>::new(12, 2, 2, 16).unwrap();
    let sc = lrc.spread_disk_failures(&mut rng);
    run(&lrc, sc, &args, &t);

    let rs = RsCode::<u8>::new(12, 4, 16).unwrap();
    let sc = rs.random_disk_failures(4, &mut rng);
    run(&rs, sc, &args, &t);

    let eo = EvenOddCode::<u8>::new(13).unwrap();
    let sc = FailureScenario::whole_disks(eo.layout(), &[2, 9]);
    run(&eo, sc, &args, &t);

    let rdp = RdpCode::<u8>::new(13).unwrap();
    let sc = FailureScenario::whole_disks(rdp.layout(), &[0, 7]);
    run(&rdp, sc, &args, &t);

    let star = StarCode::<u8>::new(13).unwrap();
    let sc = FailureScenario::whole_disks(star.layout(), &[1, 6, 12]);
    run(&star, sc, &args, &t);

    println!(
        "\npaper: PPM is the first general optimization for asymmetric parity\n\
         codes; symmetric codes still gain partition parallelism where whole\n\
         rows fail independently, but less from sequence optimization."
    );
}
