//! Figure 4: computational cost of the calculation sequences.
//!
//! Plots `C₂/C₁`, `C₃/C₁`, `C₄/C₁` against `n` for every `(m, s)` panel
//! (`m, s ∈ {1,2,3}`), at `r = 16`, `z = 1` — numeric non-zero counting,
//! no timing. The paper reports: "C₄ has the smallest value in most
//! cases … the average value of C₄/C₁ is 85.78% (from 47.97% to 98.06%)".
//!
//! `cargo run --release -p ppm-bench --bin fig4 [--full] [--seed N]`

use ppm_bench::{ExpArgs, Table};
use ppm_core::cost::{analyze, SdClosedForm};

fn main() {
    let args = ExpArgs::parse();
    let (r, z) = (16usize, 1usize);
    let ns: Vec<usize> = if args.full {
        (4..=24).collect()
    } else {
        vec![6, 11, 16, 21]
    };

    let mut c4_over_c1 = Vec::new();
    for m in 1..=3usize {
        for s in 1..=3usize {
            println!("\n# panel m={m}, s={s} (r={r}, z={z})");
            let t = Table::new(&["n", "C1", "C2/C1", "C3/C1", "C4/C1", "C4/C1 (closed form)"]);
            for &n in &ns {
                if n <= m || s > n - m {
                    continue;
                }
                let Some(prep) =
                    ppm_bench::prepare_sd(n, r, m, s, z, 8 * n * r, args.seed + n as u64)
                else {
                    eprintln!("  n={n}: no decodable instance/scenario; skipped");
                    continue;
                };
                let rep = analyze(&prep.h, &prep.scenario).expect("analyzable");
                let cf = SdClosedForm { n, r, m, s, z };
                let ratio = |c: usize| format!("{:.2}%", 100.0 * c as f64 / rep.c1 as f64);
                c4_over_c1.push(rep.c4 as f64 / rep.c1 as f64);
                t.row(&[
                    n.to_string(),
                    rep.c1.to_string(),
                    ratio(rep.c2),
                    ratio(rep.c3),
                    ratio(rep.c4),
                    format!("{:.2}%", 100.0 * cf.c4() as f64 / cf.c1() as f64),
                ]);
            }
        }
    }

    let avg = c4_over_c1.iter().sum::<f64>() / c4_over_c1.len() as f64;
    let min = c4_over_c1.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = c4_over_c1.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nC4/C1 over the sweep: avg {:.2}% (range {:.2}% .. {:.2}%)",
        100.0 * avg,
        100.0 * min,
        100.0 * max
    );
    println!("paper (full n=4..24 sweep): avg 85.78% (range 47.97% .. 98.06%)");
}
