//! Figure 10: PPM improvement across different CPUs.
//!
//! The paper runs the same experiment on an E5-2603 (4 cores), an
//! i7-3930K (6 cores) and an E5-2650 (8 cores) and finds that PPM's
//! improvement is essentially CPU-independent. This host exposes a single
//! core, so the three machines are *simulated*: the measured single-core
//! serial run calibrates the §III-C execution model, which is then
//! evaluated at core counts {4, 6, 8} with T = 4 (the paper's setting) —
//! see DESIGN.md §3.
//!
//! `cargo run --release -p ppm-bench --bin fig10 [--stripe-mib 32] [--full]`

use ppm_bench::{improvement, modeled_decode_time, ExpArgs, Table};
use ppm_core::Strategy;

const SPAWN_OVERHEAD: f64 = 15e-6;

fn main() {
    let args = ExpArgs::parse();
    let (r, z, threads) = (16usize, 1usize, 4usize);
    let cpus: [(&str, usize); 3] = [
        ("E5-2603 (4c)", 4),
        ("i7-3930K (6c)", 6),
        ("E5-2650 (8c)", 8),
    ];
    let ns: Vec<usize> = if args.full {
        vec![6, 11, 16, 21]
    } else {
        vec![6, 16]
    };
    let ss: Vec<usize> = if args.full { vec![1, 2, 3] } else { vec![1, 3] };

    println!(
        "# Figure 10: improvement per simulated CPU (stripe {:.0} MiB, r={r}, T={threads}, z={z})\n",
        args.stripe_mib()
    );
    let t = Table::new(&["config", "T=1 meas", cpus[0].0, cpus[1].0, cpus[2].0]);

    let mut spreads = Vec::new();
    for &s in &ss {
        for m in 1..=3usize {
            for &n in &ns {
                if n <= m || s > n - m {
                    continue;
                }
                let Some(prep) = ppm_bench::prepare_sd(n, r, m, s, z, args.stripe_bytes, args.seed)
                else {
                    continue;
                };
                let (base, _) =
                    ppm_bench::time_plan(&prep, Strategy::TraditionalNormal, 1, args.reps);
                let (serial, plan) = ppm_bench::time_plan(&prep, Strategy::PpmAuto, 1, args.reps);
                let mut cells = vec![
                    format!("n={n} m={m} s={s}"),
                    format!("{:+.1}%", 100.0 * improvement(base, serial)),
                ];
                let mut per_cpu = Vec::new();
                for &(_, cores) in &cpus {
                    let modeled =
                        modeled_decode_time(&plan, serial, threads, cores, SPAWN_OVERHEAD);
                    let imp = improvement(base, modeled);
                    per_cpu.push(imp);
                    cells.push(format!("{:+.1}%", 100.0 * imp));
                }
                let spread = per_cpu.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - per_cpu.iter().cloned().fold(f64::INFINITY, f64::min);
                spreads.push(spread);
                t.row(&cells);
            }
        }
    }
    let max_spread = spreads.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nmax spread across simulated CPUs: {:.1} points\n\
         paper: \"PPM achieves similar improvement on all the three CPUs\"\n\
         (with T = 4 <= all core counts, the model predicts identical scaling,\n\
         matching the paper's CPU-insensitivity claim by construction)",
        100.0 * max_spread
    );
}
