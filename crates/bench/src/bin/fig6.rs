//! Figure 6: `C₄/C₁` for different values of `r` (rows per strip).
//!
//! Sweeps `r = 4..24` for every `(m, s)` combination at `n = 16`, `z = 1`.
//! The paper observes `C₄/C₁` decreases as `r` increases (more clean rows
//! → more independent sub-matrices → bigger savings).
//!
//! `cargo run --release -p ppm-bench --bin fig6 [--full]`

use ppm_bench::{ExpArgs, Table};
use ppm_core::cost::analyze;

fn main() {
    let args = ExpArgs::parse();
    let (n, z) = (16usize, 1usize);
    let rs: Vec<usize> = if args.full {
        (4..=24).collect()
    } else {
        vec![4, 8, 16, 24]
    };

    let mut last_per_combo: Vec<(usize, usize, Vec<f64>)> = Vec::new();
    for m in 1..=3usize {
        for s in 1..=3usize {
            println!("\n# panel m={m}, s={s} (n={n}, z={z})");
            let t = Table::new(&["r", "C1", "C4", "C4/C1"]);
            let mut series = Vec::new();
            for &r in &rs {
                let Some(prep) =
                    ppm_bench::prepare_sd(n, r, m, s, z, 8 * n * r, args.seed + r as u64)
                else {
                    continue;
                };
                let rep = analyze(&prep.h, &prep.scenario).expect("analyzable");
                let ratio = rep.c4 as f64 / rep.c1 as f64;
                series.push(ratio);
                t.row(&[
                    r.to_string(),
                    rep.c1.to_string(),
                    rep.c4.to_string(),
                    format!("{:.2}%", 100.0 * ratio),
                ]);
            }
            last_per_combo.push((m, s, series));
        }
    }

    println!("\nshape check (paper: C4/C1 decreases as r increases):");
    for (m, s, series) in &last_per_combo {
        let monotone = series.windows(2).all(|w| w[1] <= w[0] + 1e-9);
        println!(
            "  m={m}, s={s}: {}",
            if monotone {
                "decreasing ✓"
            } else {
                "NOT monotone ✗"
            }
        );
    }
}
