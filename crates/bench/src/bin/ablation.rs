//! Ablation: which of PPM's two mechanisms buys what?
//!
//! PPM improves decoding through (1) calculation-sequence optimization
//! (cost reduction, works even single-threaded) and (2) partition
//! parallelism (needs cores). This binary isolates them on an SD worst
//! case:
//!
//! * `C1`  — traditional baseline (no sequence opt, no partition),
//! * `C2`  — sequence optimization only (matrix-first, unpartitioned),
//! * `C4 T=1` — partition + per-sub-matrix sequence choice, serial,
//! * `C4 T=4*` — full PPM with modeled 4-core parallelism,
//! * backend ablation — the same plans on the scalar vs SIMD region
//!   kernels.
//!
//! `cargo run --release -p ppm-bench --bin ablation [--stripe-mib N]`

use ppm_bench::{improvement, modeled_decode_time, modeled_decode_time_chunked, ExpArgs, Table};
use ppm_core::{Decoder, DecoderConfig, Strategy};
use ppm_gf::Backend;
use std::time::Instant;

const SPAWN_OVERHEAD: f64 = 15e-6;

fn main() {
    let args = ExpArgs::parse();
    let (n, r, m, s, z) = (16usize, 16usize, 2usize, 2usize, 1usize);
    let prep = ppm_bench::prepare_sd(n, r, m, s, z, args.stripe_bytes, args.seed)
        .expect("decodable instance");
    println!(
        "instance {} | stripe {:.0} MiB | worst case m={m} disks + s={s} sectors (z={z})\n",
        prep.name,
        args.stripe_mib()
    );

    let (base, base_plan) = ppm_bench::time_plan(&prep, Strategy::TraditionalNormal, 1, args.reps);

    let t = Table::new(&["variant", "mult_XORs", "time", "improvement"]);
    t.row(&[
        "C1 traditional".into(),
        base_plan.mult_xors().to_string(),
        format!("{:.2}ms", base * 1e3),
        "+0.0%".into(),
    ]);

    for (label, strategy) in [
        ("C2 sequence-opt only", Strategy::TraditionalMatrixFirst),
        ("C3 partition, mf rest", Strategy::PpmMatrixFirstRest),
        ("C4 partition+sequence", Strategy::PpmNormalRest),
    ] {
        let (secs, plan) = ppm_bench::time_plan(&prep, strategy, 1, args.reps);
        t.row(&[
            format!("{label} (T=1)"),
            plan.mult_xors().to_string(),
            format!("{:.2}ms", secs * 1e3),
            format!("{:+.1}%", 100.0 * improvement(base, secs)),
        ]);
    }

    let (serial, plan) = ppm_bench::time_plan(&prep, Strategy::PpmAuto, 1, args.reps);
    let modeled = modeled_decode_time(&plan, serial, 4, 4, SPAWN_OVERHEAD);
    t.row(&[
        "full PPM (T=4, modeled*)".into(),
        plan.mult_xors().to_string(),
        format!("{:.2}ms", modeled * 1e3),
        format!("{:+.1}%", 100.0 * improvement(base, modeled)),
    ]);
    // Our extension: chunk H_rest's regions across the pool as well.
    let chunked = modeled_decode_time_chunked(&plan, serial, 4, 4, SPAWN_OVERHEAD);
    t.row(&[
        "PPM + chunked rest (T=4, modeled*)".into(),
        plan.mult_xors().to_string(),
        format!("{:.2}ms", chunked * 1e3),
        format!("{:+.1}%", 100.0 * improvement(base, chunked)),
    ]);

    // Backend ablation: same C1 plan, scalar vs best SIMD.
    println!("\nregion-kernel backend ablation (C1 plan):");
    let bt = Table::new(&["backend", "time", "speedup vs scalar"]);
    let mut scalar_time = None;
    for backend in [Backend::Scalar, Backend::Ssse3, Backend::Avx2] {
        if !backend.is_available() {
            continue;
        }
        let decoder = Decoder::new(DecoderConfig {
            threads: 1,
            backend,
        });
        let plan = decoder
            .plan(&prep.h, &prep.scenario, Strategy::TraditionalNormal)
            .expect("plan");
        let mut scratch = prep.pristine.clone();
        let mut best = f64::INFINITY;
        for _ in 0..args.reps {
            scratch.erase(&prep.scenario);
            let t0 = Instant::now();
            decoder.decode(&plan, &mut scratch).expect("decode");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        assert!(scratch == prep.pristine);
        let speedup = scalar_time
            .map(|s: f64| format!("{:.2}x", s / best))
            .unwrap_or_else(|| "1.00x".into());
        if scalar_time.is_none() {
            scalar_time = Some(best);
        }
        bt.row(&[
            format!("{backend:?}"),
            format!("{:.2}ms", best * 1e3),
            speedup,
        ]);
    }
    println!("\n(* = simulated 4 cores; see DESIGN.md §3)");
}
