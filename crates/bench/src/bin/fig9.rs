//! Figure 9: PPM improvement for SD across stripe sizes.
//!
//! Sweeps stripe size 2 MB .. 128 MB at n = 16, r = 16, T = 4, z = 1, for
//! every `(m, s)`. Paper shape: the multi-threading overhead matters less
//! as the stripe grows, so the improvement climbs and then plateaus once
//! stripe size exceeds ~8 MB.
//!
//! `cargo run --release -p ppm-bench --bin fig9 [--full]`
//! (`--full` extends the sweep to 128 MiB; default stops at 32 MiB.)

use ppm_bench::{improvement, modeled_decode_time, ExpArgs, Table};
use ppm_core::Strategy;

const SPAWN_OVERHEAD: f64 = 15e-6;

fn main() {
    let args = ExpArgs::parse();
    let (n, r, z) = (16usize, 16usize, 1usize);
    let sim_cores = 4usize;
    let sizes_mib: Vec<usize> = if args.full {
        vec![2, 4, 8, 16, 32, 64, 128]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    let combos: Vec<(usize, usize)> = if args.full {
        (1..=3).flat_map(|m| (1..=3).map(move |s| (m, s))).collect()
    } else {
        vec![(1, 1), (2, 2), (3, 3)]
    };

    println!("# Figure 9: improvement vs stripe size (n={n}, r={r}, T=4*, z={z})\n");
    let mut headers = vec!["stripe".to_string()];
    headers.extend(combos.iter().map(|(m, s)| format!("m={m},s={s}")));
    let t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    for &mib in &sizes_mib {
        let mut cells = vec![format!("{mib}MiB")];
        for &(m, s) in &combos {
            let cell = ppm_bench::prepare_sd(n, r, m, s, z, mib << 20, args.seed)
                .map(|prep| {
                    let (base, _) =
                        ppm_bench::time_plan(&prep, Strategy::TraditionalNormal, 1, args.reps);
                    let (opt, plan) = ppm_bench::time_plan(&prep, Strategy::PpmAuto, 1, args.reps);
                    let modeled =
                        modeled_decode_time(&plan, opt, args.threads, sim_cores, SPAWN_OVERHEAD);
                    format!("{:+.1}%", 100.0 * improvement(base, modeled))
                })
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        t.row(&cells);
    }
    println!(
        "\npaper: improvement becomes steady once stripe size exceeds 8 MB\n\
         (* = T=4 on a simulated 4-core machine; see DESIGN.md §3)"
    );
}
