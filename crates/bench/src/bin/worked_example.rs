//! The paper's worked example (Figures 2–3), verified and printed as a
//! compact report for EXPERIMENTS.md.
//!
//! `cargo run --release -p ppm-bench --bin worked_example`

use ppm_codes::{ErasureCode, FailureScenario, SdCode};
use ppm_core::cost::{analyze, SdClosedForm};
use ppm_core::{encode, Decoder, DecoderConfig, LogTable, Partition, Strategy};
use ppm_stripe::random_data_stripe;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).expect("paper instance");
    let h = code.parity_check_matrix();
    let sc = FailureScenario::new(vec![2, 6, 10, 13, 14]);

    println!("instance: {}", code.name());
    println!("H: {}x{}; faulty: {:?}", h.rows(), h.cols(), sc.faulty());

    let log = LogTable::build(&h, &sc);
    println!("\nlog table:");
    for row in log.rows() {
        println!("  i={} t={} l={:?}", row.row, row.t, row.l);
    }

    let part = Partition::build(&h, &sc);
    println!(
        "\npartition: p={}, rest={:?}",
        part.degree(),
        part.rest.as_ref().map(|r| &r.faulty)
    );

    let rep = analyze(&h, &sc).expect("decodable");
    let cf = SdClosedForm {
        n: 4,
        r: 4,
        m: 1,
        s: 1,
        z: 1,
    };
    println!("\n        numeric  closed-form  paper");
    println!("  C1    {:>7}  {:>11}     35", rep.c1, cf.c1());
    println!("  C2    {:>7}  {:>11}     31", rep.c2, cf.c2());
    println!("  C3    {:>7}  {:>11}      -", rep.c3, cf.c3());
    println!("  C4    {:>7}  {:>11}      -", rep.c4, cf.c4());
    println!(
        "\n  (C1-C4)/C1 = {:.2}%   (paper: 17.14%)",
        100.0 * (rep.c1 - rep.c4) as f64 / rep.c1 as f64
    );

    assert_eq!((rep.c1, rep.c2, rep.c3, rep.c4), (35, 31, 37, 29));
    assert_eq!(part.degree(), 3);

    // Run the winning plan instrumented: the executed mult_XOR count from
    // the region kernels must land exactly on the predicted C4 = 29.
    let decoder = Decoder::new(DecoderConfig::default());
    let mut rng = StdRng::seed_from_u64(2015);
    let mut stripe = random_data_stripe(&code, 4096, &mut rng);
    encode(&code, &decoder, &mut stripe).expect("encode");
    let pristine = stripe.clone();
    stripe.erase(&sc);
    let plan = decoder.plan(&h, &sc, Strategy::PpmAuto).expect("plan");
    let stats = decoder
        .decode_with_stats(&plan, &mut stripe)
        .expect("decode");
    assert_eq!(stripe, pristine, "recovery must be bit-exact");
    println!(
        "\nexecuted (runtime telemetry): strategy {:?}, p={}, \
         predicted {} mult_XORs, executed {} ({} as plain XORs)",
        stats.strategy,
        stats.parallelism,
        stats.predicted_mult_xors,
        stats.executed_mult_xors(),
        stats.executed_plain_xors()
    );
    assert!(stats.matches_prediction());
    assert_eq!(stats.executed_mult_xors(), 29);

    println!("\nall assertions passed ✓");
}
