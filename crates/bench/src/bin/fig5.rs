//! Figure 5: `C₄/C₁` for different values of `z` (`s = 3`, `r = 16`).
//!
//! The `s` additional faulty sectors may sit on `z ∈ {1, 2, 3}` stripe
//! rows; the paper observes that `C₄/C₁` *decreases* as `z` increases
//! (more coupled rows → the traditional method wastes more), and grows
//! with `n`.
//!
//! `cargo run --release -p ppm-bench --bin fig5 [--full]`

use ppm_bench::{ExpArgs, Table};
use ppm_core::cost::analyze;

fn main() {
    let args = ExpArgs::parse();
    let (r, s) = (16usize, 3usize);
    let ns: Vec<usize> = if args.full {
        (6..=24).collect()
    } else {
        vec![6, 11, 16, 21]
    };

    for m in 1..=3usize {
        println!("\n# panel m={m} (s={s}, r={r})");
        let t = Table::new(&["n", "C4/C1 z=1", "C4/C1 z=2", "C4/C1 z=3"]);
        for &n in &ns {
            if n <= m || s > n - m {
                continue;
            }
            let mut cells = vec![n.to_string()];
            for z in 1..=3usize {
                let cell = ppm_bench::prepare_sd(n, r, m, s, z, 8 * n * r, args.seed + z as u64)
                    .and_then(|prep| analyze(&prep.h, &prep.scenario).ok())
                    .map(|rep| format!("{:.2}%", 100.0 * rep.c4 as f64 / rep.c1 as f64))
                    .unwrap_or_else(|| "-".into());
                cells.push(cell);
            }
            t.row(&cells);
        }
    }
    println!("\npaper: C4/C1 decreases as z increases; all curves grow with n.");
}
