//! The paper's metrics and the multi-core execution model.

use ppm_core::DecodePlan;
use ppm_gf::GfWord;

/// The paper's improvement ratio: how much faster `new` is than `base`
/// (0.5 = "50% improvement", i.e. 1.5× the speed).
pub fn improvement(base_secs: f64, new_secs: f64) -> f64 {
    base_secs / new_secs - 1.0
}

/// Decode throughput in MB/s for a stripe of `bytes`.
pub fn throughput_mbs(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / 1e6
}

/// Models the wall-clock of executing `plan` with `threads` threads on a
/// machine with `cores` cores, calibrated by a measured serial run.
///
/// This is the paper's own §III-C time model: the `p` independent
/// sub-matrices cost `c₀..c_{p−1}` (here in mult_XORs, converted to time
/// via the measured per-mult_XOR constant `τ = serial_secs / total_cost`);
/// they are LPT-scheduled onto `min(threads, cores, p)` workers, the ideal
/// saving being `Σcᵢ − c_max`; `H_rest` runs serially afterwards; and each
/// extra thread adds `spawn_overhead` (the paper: "some additional time is
/// spent on creating multiple threads", small relative to large sectors).
///
/// Used only where real multi-core hardware is unavailable — see
/// DESIGN.md §3. With `threads = 1` (or `cores = 1`) it returns the serial
/// time plus nothing, so measured and modeled columns coincide there.
pub fn modeled_decode_time<W: GfWord>(
    plan: &DecodePlan<W>,
    serial_secs: f64,
    threads: usize,
    cores: usize,
    spawn_overhead: f64,
) -> f64 {
    let costs = plan.independent_costs();
    let total = plan.mult_xors();
    if total == 0 {
        return 0.0;
    }
    let tau = serial_secs / total as f64;
    let workers = threads.min(cores).max(1).min(costs.len().max(1));
    let makespan = lpt_makespan(&costs, workers);
    let extra_threads = workers.saturating_sub(1);
    (makespan + plan.rest_cost()) as f64 * tau + extra_threads as f64 * spawn_overhead
}

/// Like [`modeled_decode_time`], but with the `H_rest` phase *also*
/// parallelized across the workers — the prediction for
/// `Decoder::decode_chunked`, our region-chunking extension, which splits
/// the remaining sub-matrix's byte-wise-independent region work instead
/// of leaving it serial. The chunk-dispatch overhead is folded into
/// `spawn_overhead`.
pub fn modeled_decode_time_chunked<W: GfWord>(
    plan: &DecodePlan<W>,
    serial_secs: f64,
    threads: usize,
    cores: usize,
    spawn_overhead: f64,
) -> f64 {
    let costs = plan.independent_costs();
    let total = plan.mult_xors();
    if total == 0 {
        return 0.0;
    }
    let tau = serial_secs / total as f64;
    let workers = threads.min(cores).max(1);
    let phase_a_workers = workers.min(costs.len().max(1));
    let makespan = lpt_makespan(&costs, phase_a_workers);
    let rest = (plan.rest_cost() as f64 / workers as f64).ceil();
    let extra_threads = workers.saturating_sub(1);
    (makespan as f64 + rest) * tau + extra_threads as f64 * spawn_overhead
}

/// Models the wall-clock of `RepairService::repair_batch` repairing
/// `stripes` identically-failed stripes with `workers` stripe-level
/// worker threads on a machine with `cores` cores.
///
/// The batch driver splits the stripes into contiguous chunks of
/// `ceil(stripes / workers)` and decodes each chunk serially on its own
/// worker, so the largest chunk sets the makespan; each worker beyond
/// the first adds `spawn_overhead` (thread creation plus first-touch
/// cache/arena sharing, negligible against a 10k-stripe job). Calibrated
/// by a measured single-worker run via `serial_stripe_secs` — the same
/// measured-serial/modeled-parallel substitution as
/// [`modeled_decode_time`] (DESIGN.md §3). With `workers = 1` or
/// `cores = 1` it reduces to the measured serial time.
pub fn modeled_batch_time(
    stripes: usize,
    serial_stripe_secs: f64,
    workers: usize,
    cores: usize,
    spawn_overhead: f64,
) -> f64 {
    if stripes == 0 {
        return 0.0;
    }
    let workers = workers.min(cores).max(1).min(stripes);
    let chunk = stripes.div_ceil(workers);
    chunk as f64 * serial_stripe_secs + (workers - 1) as f64 * spawn_overhead
}

/// Longest-processing-time-first makespan of `jobs` on `workers` machines.
fn lpt_makespan(jobs: &[usize], workers: usize) -> usize {
    if jobs.is_empty() {
        return 0;
    }
    let mut sorted = jobs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0usize; workers.max(1)];
    for j in sorted {
        let min = loads.iter_mut().min().expect("non-empty loads");
        *min += j;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_codes::{ErasureCode, FailureScenario, SdCode};
    use ppm_core::Strategy;
    use ppm_gf::Backend;

    #[test]
    fn improvement_metric() {
        assert!((improvement(2.0, 1.0) - 1.0).abs() < 1e-12); // 2x faster = 100%
        assert!((improvement(1.5, 1.0) - 0.5).abs() < 1e-12);
        assert!(improvement(1.0, 2.0) < 0.0);
    }

    #[test]
    fn lpt_basics() {
        assert_eq!(lpt_makespan(&[], 4), 0);
        assert_eq!(lpt_makespan(&[5, 5, 5], 1), 15);
        assert_eq!(lpt_makespan(&[5, 5, 5], 3), 5);
        assert_eq!(lpt_makespan(&[4, 3, 3, 2], 2), 6); // 4+2 / 3+3
        assert_eq!(lpt_makespan(&[10, 1, 1], 8), 10); // bounded by longest
    }

    #[test]
    fn model_reduces_to_serial_at_one_thread() {
        let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
        let plan = DecodePlan::build(
            &code.parity_check_matrix(),
            &FailureScenario::new(vec![2, 6, 10, 13, 14]),
            Strategy::PpmNormalRest,
            Backend::Scalar,
        )
        .unwrap();
        let serial = 1.0;
        let t1 = modeled_decode_time(&plan, serial, 1, 8, 0.0);
        assert!(
            (t1 - serial).abs() < 1e-9,
            "T=1 model must equal serial, got {t1}"
        );
        // With 3 threads the three 3-cost groups run concurrently:
        // makespan 3 + rest 20 of total 29.
        let t3 = modeled_decode_time(&plan, serial, 3, 8, 0.0);
        assert!((t3 - 23.0 / 29.0).abs() < 1e-9, "got {t3}");
        // Extra threads beyond p don't help further.
        let t8 = modeled_decode_time(&plan, serial, 8, 8, 0.0);
        assert!((t8 - t3).abs() < 1e-12);
        // But a core cap does: cores=1 pins it back to serial.
        let c1 = modeled_decode_time(&plan, serial, 8, 1, 0.0);
        assert!((c1 - serial).abs() < 1e-9);
    }

    #[test]
    fn spawn_overhead_counts_extra_threads() {
        let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
        let plan = DecodePlan::build(
            &code.parity_check_matrix(),
            &FailureScenario::new(vec![2, 6, 10, 13, 14]),
            Strategy::PpmNormalRest,
            Backend::Scalar,
        )
        .unwrap();
        let without = modeled_decode_time(&plan, 1.0, 3, 8, 0.0);
        let with = modeled_decode_time(&plan, 1.0, 3, 8, 0.1);
        assert!((with - without - 0.2).abs() < 1e-9);
    }
}

#[cfg(test)]
mod batch_model_tests {
    use super::*;

    #[test]
    fn batch_model_scales_by_chunk_size() {
        let per = 1e-6;
        let serial = modeled_batch_time(10_000, per, 1, 8, 0.0);
        assert!((serial - 10_000.0 * per).abs() < 1e-12);
        // 8 workers on 8 cores: chunk = 1250 stripes -> 8x.
        let eight = modeled_batch_time(10_000, per, 8, 8, 0.0);
        assert!((serial / eight - 8.0).abs() < 1e-9);
        // A 1-core cap pins it back to serial (the container's reality).
        let capped = modeled_batch_time(10_000, per, 8, 1, 0.0);
        assert!((capped - serial).abs() < 1e-12);
        // Workers beyond the stripe count can't shrink the chunk below 1.
        let tiny = modeled_batch_time(3, per, 8, 8, 0.0);
        assert!((tiny - per).abs() < 1e-12);
        // Spawn overhead counts workers beyond the first.
        let with = modeled_batch_time(10_000, per, 4, 8, 0.1);
        let without = modeled_batch_time(10_000, per, 4, 8, 0.0);
        assert!((with - without - 0.3).abs() < 1e-9);
        // Empty batch is instantaneous.
        assert_eq!(modeled_batch_time(0, per, 4, 8, 0.1), 0.0);
    }
}

#[cfg(test)]
mod chunked_model_tests {
    use super::*;
    use ppm_codes::{ErasureCode, FailureScenario, SdCode};
    use ppm_core::{DecodePlan, Strategy};
    use ppm_gf::Backend;

    #[test]
    fn chunked_model_beats_plain_on_rest_heavy_plans() {
        let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
        let plan = DecodePlan::build(
            &code.parity_check_matrix(),
            &FailureScenario::new(vec![2, 6, 10, 13, 14]),
            Strategy::PpmNormalRest,
            Backend::Scalar,
        )
        .unwrap();
        // Plain model: rest (20 of 29) stays serial; chunked splits it.
        let plain = modeled_decode_time(&plan, 1.0, 4, 4, 0.0);
        let chunked = modeled_decode_time_chunked(&plan, 1.0, 4, 4, 0.0);
        assert!(chunked < plain, "chunked {chunked} !< plain {plain}");
        // Serial: both degenerate to the measured time.
        let s1 = modeled_decode_time_chunked(&plan, 1.0, 1, 4, 0.0);
        assert!((s1 - 1.0).abs() < 1e-9);
    }
}
