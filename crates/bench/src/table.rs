//! Plain-text table output for the figure binaries.

/// A simple fixed-width table printer: header once, then rows; every cell
/// is right-aligned to its column width.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Prints the header and remembers column widths (at least the header
    /// width, at least 8).
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(8)).collect();
        let t = Table { widths };
        t.print_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        t.print_rule();
        t
    }

    /// Prints one data row.
    pub fn row(&self, cells: &[String]) {
        self.print_row(cells);
    }

    fn print_row(&self, cells: &[String]) {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = self.widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }

    fn print_rule(&self) {
        let line: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a ratio as a percentage string, e.g. `0.8578 -> "85.78%"`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats an improvement as a signed percentage, e.g. `0.61 -> "+61.0%"`.
pub fn signed_pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Formats seconds as adaptive ms/s.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else {
        format!("{:.2}ms", x * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.8578), "85.78%");
        assert_eq!(signed_pct(0.6109), "+61.1%");
        assert_eq!(secs(0.00123), "1.23ms");
        assert_eq!(secs(2.5), "2.50s");
    }

    #[test]
    fn table_prints_without_panicking() {
        let t = Table::new(&["n", "C4/C1"]);
        t.row(&["6".into(), "85.78%".into()]);
    }
}
