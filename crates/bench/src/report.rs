//! Machine-readable experiment output: every headline bench writes a
//! `BENCH_<name>.json` snapshot next to the human-readable table, so CI
//! and the EXPERIMENTS.md tables can diff numbers without scraping
//! stdout.
//!
//! The file lands at the workspace root by default (the repo carries
//! the committed snapshots there); set `PPM_BENCH_DIR` to redirect —
//! CI points it at a scratch directory and compares.

use std::path::{Path, PathBuf};

/// Directory `BENCH_*.json` files are written to: `PPM_BENCH_DIR` if
/// set, else the workspace root (two levels above this crate).
pub fn bench_dir() -> PathBuf {
    match std::env::var_os("PPM_BENCH_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Writes `json` to `BENCH_<name>.json` in [`bench_dir`], returning the
/// path. Panics on I/O failure — a bench that cannot record its result
/// has failed.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let path = bench_dir().join(format!("BENCH_{name}.json"));
    let mut text = json.trim_end().to_string();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_redirects() {
        // Not a full write test (the env var is process-global); just
        // check the default resolves inside the workspace.
        let dir = bench_dir();
        assert!(dir.join("Cargo.toml").exists() || std::env::var_os("PPM_BENCH_DIR").is_some());
    }
}
