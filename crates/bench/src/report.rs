//! Machine-readable experiment output: every headline bench writes a
//! `BENCH_<name>.json` snapshot next to the human-readable table, so CI
//! and the EXPERIMENTS.md tables can diff numbers without scraping
//! stdout.
//!
//! The file lands at the workspace root by default (the repo carries
//! the committed snapshots there); set `PPM_BENCH_DIR` to redirect —
//! CI points it at a scratch directory and compares.

use std::path::{Path, PathBuf};

/// Directory `BENCH_*.json` files are written to: `PPM_BENCH_DIR` if
/// set, else the workspace root (two levels above this crate).
pub fn bench_dir() -> PathBuf {
    match std::env::var_os("PPM_BENCH_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Writes `json` to `BENCH_<name>.json` in [`bench_dir`], returning the
/// path. Panics on I/O failure — a bench that cannot record its result
/// has failed.
///
/// The write is crash-safe: the content lands in a `.tmp` sibling first
/// and is renamed over the target, so a bench killed mid-write leaves
/// the committed snapshot intact rather than truncated.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let path = bench_dir().join(format!("BENCH_{name}.json"));
    let tmp = bench_dir().join(format!("BENCH_{name}.json.tmp"));
    let mut text = json.trim_end().to_string();
    text.push('\n');
    std::fs::write(&tmp, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, &path)
        .unwrap_or_else(|e| panic!("cannot rename {} to {}: {e}", tmp.display(), path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_redirects() {
        // Not a full write test (the env var is process-global); just
        // check the default resolves inside the workspace.
        let dir = bench_dir();
        assert!(dir.join("Cargo.toml").exists() || std::env::var_os("PPM_BENCH_DIR").is_some());
    }

    #[test]
    fn write_is_atomic_and_newline_terminated() {
        // The env var is process-global, so this test only runs the
        // writer when CI already points PPM_BENCH_DIR at scratch space;
        // otherwise it exercises the same path against a unique name in
        // the default dir and cleans up after itself.
        let name = format!("selftest_{}", std::process::id());
        let path = write_bench_json(&name, "{\"ok\": true}  \n\n");
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        assert_eq!(text, "{\"ok\": true}\n");
        // The temporary is gone: the only artifact is the snapshot.
        assert!(!path.with_extension("json.tmp").exists());
        // Overwrite goes through the same rename, replacing content.
        let again = write_bench_json(&name, "{\"ok\": false}");
        assert_eq!(again, path);
        assert_eq!(
            std::fs::read_to_string(&path).expect("snapshot readable"),
            "{\"ok\": false}\n"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }
}
