//! Machine-readable experiment output: every headline bench writes a
//! `BENCH_<name>.json` snapshot next to the human-readable table, so CI
//! and the EXPERIMENTS.md tables can diff numbers without scraping
//! stdout.
//!
//! The file lands at the workspace root by default (the repo carries
//! the committed snapshots there); set `PPM_BENCH_DIR` to redirect —
//! CI points it at a scratch directory and compares.

use std::path::{Path, PathBuf};

/// Schema version stamped into every `BENCH_*.json` snapshot. Bump when
/// the injected envelope (not a bench's own payload) changes shape.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The workspace's current git commit (short SHA), or `"unknown"` when
/// git is unavailable — snapshots must still be writable from a bare
/// source tarball.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prepends the schema/provenance envelope to a bench's own JSON
/// object: `"schema_version"`, then a `"meta"` object carrying the
/// bench name, git SHA, crate version, and build profile. A payload
/// that is not a JSON object (or is empty) is passed through untouched
/// — the envelope only knows how to extend an object.
fn with_envelope(name: &str, json: &str) -> String {
    let trimmed = json.trim();
    let Some(rest) = trimmed.strip_prefix('{') else {
        return trimmed.to_string();
    };
    let separator = if rest.trim_start().starts_with('}') {
        ""
    } else {
        ","
    };
    format!(
        "{{\"schema_version\":{},\"meta\":{{\"bench\":\"{}\",\"git_sha\":\"{}\",\
         \"crate_version\":\"{}\",\"profile\":\"{}\"}}{}{}",
        BENCH_SCHEMA_VERSION,
        name,
        git_sha(),
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        separator,
        rest,
    )
}

/// Directory `BENCH_*.json` files are written to: `PPM_BENCH_DIR` if
/// set, else the workspace root (two levels above this crate).
pub fn bench_dir() -> PathBuf {
    match std::env::var_os("PPM_BENCH_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Writes `json` to `BENCH_<name>.json` in [`bench_dir`], returning the
/// path. Panics on I/O failure — a bench that cannot record its result
/// has failed.
///
/// Object payloads are stamped with a provenance envelope first:
/// `"schema_version"` ([`BENCH_SCHEMA_VERSION`]) and a `"meta"` object
/// naming the bench, the git commit ([`git_sha`]), the crate version,
/// and the build profile, so a committed snapshot records where its
/// numbers came from.
///
/// The write is crash-safe: the content lands in a `.tmp` sibling first
/// and is renamed over the target, so a bench killed mid-write leaves
/// the committed snapshot intact rather than truncated.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let path = bench_dir().join(format!("BENCH_{name}.json"));
    let tmp = bench_dir().join(format!("BENCH_{name}.json.tmp"));
    let mut text = with_envelope(name, json.trim_end());
    text.push('\n');
    std::fs::write(&tmp, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, &path)
        .unwrap_or_else(|e| panic!("cannot rename {} to {}: {e}", tmp.display(), path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_redirects() {
        // Not a full write test (the env var is process-global); just
        // check the default resolves inside the workspace.
        let dir = bench_dir();
        assert!(dir.join("Cargo.toml").exists() || std::env::var_os("PPM_BENCH_DIR").is_some());
    }

    #[test]
    fn write_is_atomic_and_newline_terminated() {
        // The env var is process-global, so this test only runs the
        // writer when CI already points PPM_BENCH_DIR at scratch space;
        // otherwise it exercises the same path against a unique name in
        // the default dir and cleans up after itself.
        let name = format!("selftest_{}", std::process::id());
        let path = write_bench_json(&name, "{\"ok\": true}  \n\n");
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        // The envelope leads, the payload follows, one trailing newline.
        assert!(text.starts_with("{\"schema_version\":1,\"meta\":{\"bench\":\""));
        assert!(text.contains(&format!("\"bench\":\"{name}\"")));
        assert!(text.contains("\"git_sha\":\""));
        assert!(text.ends_with("\"ok\": true}\n"));
        // The temporary is gone: the only artifact is the snapshot.
        assert!(!path.with_extension("json.tmp").exists());
        // Overwrite goes through the same rename, replacing content.
        let again = write_bench_json(&name, "{\"ok\": false}");
        assert_eq!(again, path);
        assert!(std::fs::read_to_string(&path)
            .expect("snapshot readable")
            .ends_with("\"ok\": false}\n"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn envelope_handles_empty_and_non_object_payloads() {
        let wrapped = with_envelope("x", "{}");
        assert!(wrapped.starts_with("{\"schema_version\":1,"));
        assert!(wrapped.ends_with("}}"));
        assert!(!wrapped.contains(",}"), "no dangling comma in {wrapped}");
        // Arrays and scalars pass through untouched.
        assert_eq!(with_envelope("x", "[1,2]"), "[1,2]");
    }

    #[test]
    fn git_sha_is_short_hex_or_unknown() {
        let sha = git_sha();
        assert!(
            sha == "unknown" || (sha.len() >= 4 && sha.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected sha {sha:?}"
        );
    }
}
