//! Experiment harness for reproducing the PPM paper's evaluation.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper (see
//! DESIGN.md's per-experiment index); this library holds the shared
//! machinery: instance preparation, wall-clock timing, the paper's
//! improvement metric, and the multi-core *simulation* used where the
//! evaluation container's single CPU core cannot express thread scaling
//! (DESIGN.md §3 documents the substitution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod model;
pub mod prep;
pub mod report;
pub mod table;

pub use args::ExpArgs;
pub use model::{
    improvement, modeled_batch_time, modeled_decode_time, modeled_decode_time_chunked,
    throughput_mbs,
};
pub use prep::{
    ledger_plan, prepare_hitchhiker, prepare_lrc, prepare_product, prepare_rs, prepare_sd,
    prepare_sd_w, time_plan, time_tape_vs_graph, Prepared,
};
pub use report::{bench_dir, git_sha, write_bench_json, BENCH_SCHEMA_VERSION};
pub use table::Table;
