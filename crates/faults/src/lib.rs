//! Deterministic fault injection for the verified-repair pipeline.
//!
//! Every robustness claim in this workspace is only as good as the
//! faults it was tested against. This crate produces those faults,
//! **reproducibly**: a [`FaultInjector`] is seeded, every choice it
//! makes comes from that seed, and every injection returns a record
//! describing exactly what was done — so a failing test names its fault
//! and a CI seed matrix replays byte-identical corruption on every run.
//!
//! Four fault families, matching what verified repair must catch:
//!
//! * **Silent corruption** ([`FaultInjector::corrupt_survivor`],
//!   [`FaultInjector::corrupt_survivors`]): bit-flips in surviving
//!   blocks. The decode consumes them without complaint; only the
//!   surplus-row parity check can notice.
//! * **Geometry faults** ([`FaultInjector::truncated_stripe`],
//!   [`FaultInjector::misaligned_stripe`]): stripes whose buffers are
//!   shorter or shaped differently than the plan expects. These must be
//!   rejected structurally (`RepairError::GeometryMismatch`), never
//!   sliced out of bounds.
//! * **Label faults** ([`FaultInjector::understate_scenario`],
//!   [`FaultInjector::mislabel_scenario`]): erasure sets that disagree
//!   with what was actually lost — the "operator fat-fingers the device
//!   list" case. An understated label makes the decode read a lost
//!   (zeroed) sector as if it survived; escalation must find it.
//! * **Kernel faults** ([`FaultInjector::force_simd_miscompute`]):
//!   flips the process-global switch that makes every SIMD region
//!   kernel corrupt its first output byte, exercising the
//!   scalar-fallback self-check in `ppm-gf`.
//! * **Frame faults** ([`FrameChaos`]): the network family. A seeded
//!   per-frame decider that tells a transport wrapper what to do to
//!   the next frame — deliver, drop, delay, duplicate, reorder,
//!   truncate, bit-flip, or hang — plus the byte-mangling primitives
//!   themselves. The decider is transport-agnostic: it never touches a
//!   socket or channel, it only makes deterministic choices and mutates
//!   byte vectors, so the same seed replays the same fault schedule
//!   over any link.
//!
//! The injector is intentionally free of any dependency on the decode
//! stack: it mutates stripes and scenarios, and what the repair layer
//! does about it is the repair layer's test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ppm_codes::FailureScenario;
use ppm_codes::StripeLayout;
use ppm_stripe::Stripe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use ppm_gf::{force_simd_miscompute, kernel_fallbacks, simd_miscompute_forced};

/// One injected bit-flip: which sector, which byte, which mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Sector the flip landed in (always a surviving sector).
    pub sector: usize,
    /// Byte offset within the sector.
    pub offset: usize,
    /// Non-zero XOR mask applied to that byte.
    pub mask: u8,
}

/// A deterministic, seeded source of faults.
///
/// Two injectors built with the same seed produce the same sequence of
/// faults against the same inputs; the seed is carried in the record so
/// failures can name it.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector whose entire fault stream is determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Flips one random bit-pattern in one random *surviving* sector of
    /// `stripe` (surviving with respect to `scenario`), returning what
    /// was done. The mask is never zero, so the stripe always changes.
    ///
    /// # Panics
    /// Panics if every sector of the stripe is in `scenario` (nothing
    /// survives to corrupt) — a test-harness misuse, not a data fault.
    pub fn corrupt_survivor(&mut self, stripe: &mut Stripe, scenario: &FailureScenario) -> BitFlip {
        let survivors: Vec<usize> = (0..stripe.layout().sectors())
            .filter(|&s| !scenario.contains(s))
            .collect();
        assert!(
            !survivors.is_empty(),
            "no surviving sector to corrupt: scenario covers the stripe"
        );
        let sector = survivors[self.rng.random_range(0..survivors.len())];
        self.corrupt_sector(stripe, sector)
    }

    /// Like [`FaultInjector::corrupt_survivor`], but injects `count`
    /// flips into `count` *distinct* surviving sectors (or as many as
    /// survive, whichever is smaller). Returns one record per flip.
    pub fn corrupt_survivors(
        &mut self,
        stripe: &mut Stripe,
        scenario: &FailureScenario,
        count: usize,
    ) -> Vec<BitFlip> {
        let mut survivors: Vec<usize> = (0..stripe.layout().sectors())
            .filter(|&s| !scenario.contains(s))
            .collect();
        let mut flips = Vec::new();
        while flips.len() < count && !survivors.is_empty() {
            let pick = self.rng.random_range(0..survivors.len());
            let sector = survivors.swap_remove(pick);
            flips.push(self.corrupt_sector(stripe, sector));
        }
        flips
    }

    /// Flips a random non-zero mask into a random byte of `sector`.
    pub fn corrupt_sector(&mut self, stripe: &mut Stripe, sector: usize) -> BitFlip {
        let bytes = stripe.sector_mut(sector);
        let offset = self.rng.random_range(0..bytes.len());
        let mask = loop {
            let m: u8 = self.rng.random();
            if m != 0 {
                break m;
            }
        };
        bytes[offset] ^= mask;
        BitFlip {
            sector,
            offset,
            mask,
        }
    }

    /// A stripe assembled from device files that were each truncated by
    /// at least one sector-row: same sector size and strip count, fewer
    /// rows, so the sector count no longer matches the code's layout.
    /// Feeding it to a repair must fail structurally
    /// (`GeometryMismatch`), not slice out of bounds.
    ///
    /// Note that *uniform* shortening of every sector (same layout,
    /// smaller aligned `sector_bytes`) is deliberately not modeled as a
    /// fault: the parity-check relations hold per byte position, so such
    /// a stripe is indistinguishable from a legitimately smaller volume
    /// and no single-stripe check can object to it.
    ///
    /// # Panics
    /// Panics if `original` has a single sector-row on a single strip
    /// (nothing can be truncated away).
    pub fn truncated_stripe(&mut self, original: &Stripe) -> Stripe {
        let l = original.layout();
        let cut = if l.r > 1 {
            StripeLayout::new(l.n, self.rng.random_range(1..l.r))
        } else {
            assert!(l.n > 1, "cannot truncate a 1x1 stripe");
            StripeLayout::new(self.rng.random_range(1..l.n), 1)
        };
        Stripe::zeroed(cut, original.sector_bytes())
    }

    /// A stripe with a random *different* geometry (one strip more or
    /// fewer, or one sector-row more or fewer) — the "repair pointed at
    /// the wrong volume" fault. The sector count always differs from
    /// `original`'s, so geometry checks must trip.
    pub fn misaligned_stripe(&mut self, original: &Stripe) -> Stripe {
        let l = original.layout();
        let candidates = [
            StripeLayout::new(l.n + 1, l.r),
            StripeLayout::new(l.n.max(2) - 1, l.r),
            StripeLayout::new(l.n, l.r + 1),
            StripeLayout::new(l.n, l.r.max(2) - 1),
        ];
        let valid: Vec<StripeLayout> = candidates
            .into_iter()
            .filter(|c| c.sectors() != l.sectors())
            .collect();
        let pick = valid[self.rng.random_range(0..valid.len())];
        Stripe::zeroed(pick, original.sector_bytes())
    }

    /// Drops one randomly chosen faulty sector from `scenario`'s label —
    /// the stripe still lost it, but the repair isn't told. Returns the
    /// understated scenario and the dropped sector.
    ///
    /// # Panics
    /// Panics if `scenario` is empty (nothing to understate).
    pub fn understate_scenario(&mut self, scenario: &FailureScenario) -> (FailureScenario, usize) {
        let faulty = scenario.faulty();
        assert!(!faulty.is_empty(), "cannot understate an empty scenario");
        let drop_at = self.rng.random_range(0..faulty.len());
        let dropped = faulty[drop_at];
        let rest: Vec<usize> = faulty.iter().copied().filter(|&s| s != dropped).collect();
        (FailureScenario::new(rest), dropped)
    }

    /// Replaces one randomly chosen faulty sector in `scenario`'s label
    /// with a sector that did *not* fail — the label is the right size
    /// but points at the wrong block. Returns the mislabeled scenario,
    /// the truly-lost sector the label omits, and the healthy sector it
    /// wrongly names.
    ///
    /// # Panics
    /// Panics if `scenario` is empty or covers every sector of a stripe
    /// with `total_sectors` sectors (no healthy sector to misname).
    pub fn mislabel_scenario(
        &mut self,
        scenario: &FailureScenario,
        total_sectors: usize,
    ) -> (FailureScenario, usize, usize) {
        let faulty = scenario.faulty();
        assert!(!faulty.is_empty(), "cannot mislabel an empty scenario");
        let healthy: Vec<usize> = (0..total_sectors)
            .filter(|&s| !scenario.contains(s))
            .collect();
        assert!(!healthy.is_empty(), "no healthy sector to misname");
        let omit = faulty[self.rng.random_range(0..faulty.len())];
        let wrong = healthy[self.rng.random_range(0..healthy.len())];
        let relabeled: Vec<usize> = faulty
            .iter()
            .copied()
            .filter(|&s| s != omit)
            .chain([wrong])
            .collect();
        (FailureScenario::new(relabeled), omit, wrong)
    }

    /// Forces (or clears) the process-global SIMD-miscompute fault in
    /// `ppm-gf`: while set, every SIMD region kernel flips the first
    /// byte of its output. Re-exported here so harnesses drive all fault
    /// families through one object. **Global state** — tests toggling it
    /// must serialize (see `ppm-gf`'s `fault_hooks` tests).
    pub fn force_simd_miscompute(&mut self, enabled: bool) {
        force_simd_miscompute(enabled);
    }
}

// ---------------------------------------------------------------------
// Frame chaos: the network fault family
// ---------------------------------------------------------------------

/// Per-frame fault probabilities, each in `[0.0, 1.0]`. The sum of all
/// rates must stay `<= 1.0`; whatever is left over is the probability
/// of clean delivery.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosRates {
    /// Frame silently vanishes.
    pub drop: f64,
    /// One random byte of the frame is bit-flipped.
    pub corrupt: f64,
    /// Frame is cut to a strict prefix (possibly empty).
    pub truncate: f64,
    /// Frame is delivered twice.
    pub duplicate: f64,
    /// Frame is held back and delivered after its successor.
    pub reorder: f64,
    /// Frame is delivered late (the wrapper decides how late).
    pub delay: f64,
    /// The link goes permanently silent starting with this frame —
    /// the partition/dead-peer fault. Keep this rate tiny.
    pub hang: f64,
}

impl ChaosRates {
    /// Sum of all fault rates (the probability a frame is *not*
    /// delivered cleanly).
    pub fn total(&self) -> f64 {
        self.drop
            + self.corrupt
            + self.truncate
            + self.duplicate
            + self.reorder
            + self.delay
            + self.hang
    }
}

/// What [`FrameChaos::next_fault`] decided to do to one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameFault {
    /// Pass the frame through untouched.
    Deliver,
    /// Lose the frame.
    Drop,
    /// Flip one random byte ([`FrameChaos::mangle`]).
    Corrupt,
    /// Cut the frame to a random strict prefix
    /// ([`FrameChaos::truncate_frame`]).
    Truncate,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame back one slot.
    Reorder,
    /// Deliver the frame late.
    Delay,
    /// Go permanently silent.
    Hang,
}

/// Converts a probability to a 32-bit threshold for a uniform `u32`
/// draw, saturating at the ends so `1.0` always fires and `0.0` never
/// does.
fn threshold(rate: f64) -> u64 {
    let clamped = rate.clamp(0.0, 1.0);
    (clamped * f64::from(u32::MAX)) as u64
}

/// A deterministic, seeded source of *frame* faults, following the
/// [`FaultInjector`] idiom: every decision comes from the seed, so a
/// failing chaos test names its seed and CI replays the identical
/// fault schedule.
///
/// One `FrameChaos` serves one direction of one link; give each
/// direction its own decider (decorrelate with `seed ^ direction`)
/// so request and response faults draw independent streams.
#[derive(Clone, Debug)]
pub struct FrameChaos {
    seed: u64,
    rates: ChaosRates,
    rng: StdRng,
    decisions: u64,
}

impl FrameChaos {
    /// Creates a decider whose entire fault schedule is determined by
    /// `seed` and `rates`.
    ///
    /// # Panics
    /// Panics if the rates sum above 1.0 — that is a harness bug, not
    /// a data fault.
    pub fn new(seed: u64, rates: ChaosRates) -> Self {
        assert!(
            rates.total() <= 1.0 + 1e-9,
            "chaos rates sum to {} > 1.0",
            rates.total()
        );
        FrameChaos {
            seed,
            rates,
            rng: StdRng::seed_from_u64(seed),
            decisions: 0,
        }
    }

    /// The seed this decider was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rates this decider draws from.
    pub fn rates(&self) -> ChaosRates {
        self.rates
    }

    /// How many fault decisions have been drawn so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decides the fate of the next frame. One uniform draw,
    /// partitioned by cumulative rate thresholds in declaration order
    /// (drop, corrupt, truncate, duplicate, reorder, delay, hang,
    /// else deliver).
    pub fn next_fault(&mut self) -> FrameFault {
        self.decisions += 1;
        let draw = u64::from(self.rng.random::<u32>());
        let r = self.rates;
        let mut edge = threshold(r.drop);
        if draw < edge {
            return FrameFault::Drop;
        }
        for (rate, fault) in [
            (r.corrupt, FrameFault::Corrupt),
            (r.truncate, FrameFault::Truncate),
            (r.duplicate, FrameFault::Duplicate),
            (r.reorder, FrameFault::Reorder),
            (r.delay, FrameFault::Delay),
            (r.hang, FrameFault::Hang),
        ] {
            let next_edge = edge + threshold(rate);
            if draw < next_edge {
                return fault;
            }
            edge = next_edge;
        }
        FrameFault::Deliver
    }

    /// Flips a random non-zero mask into a random byte of `frame`,
    /// returning `(offset, mask)`. Empty frames are left alone (there
    /// is no byte to corrupt) and report `(0, 0)`.
    pub fn mangle(&mut self, frame: &mut [u8]) -> (usize, u8) {
        if frame.is_empty() {
            return (0, 0);
        }
        let offset = self.rng.random_range(0..frame.len());
        let mask = loop {
            let m: u8 = self.rng.random();
            if m != 0 {
                break m;
            }
        };
        frame[offset] ^= mask;
        (offset, mask)
    }

    /// Cuts `frame` to a random strict prefix (possibly empty),
    /// returning the new length. Empty frames stay empty.
    pub fn truncate_frame(&mut self, frame: &mut Vec<u8>) -> usize {
        if frame.is_empty() {
            return 0;
        }
        let keep = self.rng.random_range(0..frame.len());
        frame.truncate(keep);
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_codes::StripeLayout;

    fn stripe() -> Stripe {
        Stripe::zeroed(StripeLayout::new(4, 4), 64)
    }

    #[test]
    fn same_seed_same_faults() {
        let sc = FailureScenario::new(vec![2, 6]);
        let (mut a, mut b) = (stripe(), stripe());
        let fa = FaultInjector::new(99).corrupt_survivor(&mut a, &sc);
        let fb = FaultInjector::new(99).corrupt_survivor(&mut b, &sc);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        // A different seed diverges somewhere in a short stream.
        let mut c = stripe();
        let mut other = FaultInjector::new(100);
        let different = (0..8).any(|_| other.corrupt_survivor(&mut c, &sc) != fa);
        assert!(different);
    }

    #[test]
    fn corruption_hits_only_survivors_and_always_changes_bytes() {
        let sc = FailureScenario::new(vec![0, 5, 10, 15]);
        let mut inj = FaultInjector::new(7);
        for _ in 0..50 {
            let mut s = stripe();
            let flip = inj.corrupt_survivor(&mut s, &sc);
            assert!(!sc.contains(flip.sector));
            assert_ne!(flip.mask, 0);
            assert_eq!(s.sector(flip.sector)[flip.offset], flip.mask);
        }
    }

    #[test]
    fn multi_corruption_uses_distinct_sectors() {
        let sc = FailureScenario::new(vec![2, 6]);
        let mut inj = FaultInjector::new(8);
        let mut s = stripe();
        let flips = inj.corrupt_survivors(&mut s, &sc, 5);
        assert_eq!(flips.len(), 5);
        let mut sectors: Vec<usize> = flips.iter().map(|f| f.sector).collect();
        sectors.sort_unstable();
        sectors.dedup();
        assert_eq!(sectors.len(), 5, "distinct sectors");
        // Asking for more than survive caps at the survivor count.
        let mut s = stripe();
        assert_eq!(inj.corrupt_survivors(&mut s, &sc, 100).len(), 14);
    }

    #[test]
    fn geometry_faults_always_differ_from_the_original() {
        let orig = stripe();
        let mut inj = FaultInjector::new(9);
        for _ in 0..20 {
            let t = inj.truncated_stripe(&orig);
            assert_eq!(t.sector_bytes(), orig.sector_bytes());
            assert_eq!(t.layout().n, orig.layout().n);
            assert!(t.layout().sectors() < orig.layout().sectors());
            let m = inj.misaligned_stripe(&orig);
            assert_ne!(m.layout().sectors(), orig.layout().sectors());
        }
    }

    #[test]
    fn frame_chaos_is_deterministic_per_seed() {
        let rates = ChaosRates {
            drop: 0.2,
            corrupt: 0.2,
            truncate: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            delay: 0.1,
            hang: 0.05,
        };
        let mut a = FrameChaos::new(41, rates);
        let mut b = FrameChaos::new(41, rates);
        let seq_a: Vec<FrameFault> = (0..256).map(|_| a.next_fault()).collect();
        let seq_b: Vec<FrameFault> = (0..256).map(|_| b.next_fault()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.decisions(), 256);
        // A different seed diverges somewhere in a short stream.
        let mut c = FrameChaos::new(42, rates);
        assert!(seq_a.iter().any(|&f| f != c.next_fault()));
    }

    #[test]
    fn frame_chaos_rates_shape_the_fault_mix() {
        // All-drop: every frame drops. All-zero: every frame delivers.
        let mut all_drop = FrameChaos::new(
            1,
            ChaosRates {
                drop: 1.0,
                ..ChaosRates::default()
            },
        );
        let mut clean = FrameChaos::new(1, ChaosRates::default());
        for _ in 0..64 {
            assert_eq!(all_drop.next_fault(), FrameFault::Drop);
            assert_eq!(clean.next_fault(), FrameFault::Deliver);
        }
        // A mixed config produces every named family eventually.
        let rates = ChaosRates {
            drop: 0.12,
            corrupt: 0.12,
            truncate: 0.12,
            duplicate: 0.12,
            reorder: 0.12,
            delay: 0.12,
            hang: 0.12,
        };
        let mut mixed = FrameChaos::new(7, rates);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            seen.insert(mixed.next_fault());
        }
        for fault in [
            FrameFault::Deliver,
            FrameFault::Drop,
            FrameFault::Corrupt,
            FrameFault::Truncate,
            FrameFault::Duplicate,
            FrameFault::Reorder,
            FrameFault::Delay,
            FrameFault::Hang,
        ] {
            assert!(seen.contains(&fault), "{fault:?} never drawn");
        }
    }

    #[test]
    fn mangle_always_changes_a_nonempty_frame() {
        let mut chaos = FrameChaos::new(5, ChaosRates::default());
        for len in [1usize, 2, 64, 1000] {
            let original = vec![0xA5u8; len];
            let mut frame = original.clone();
            let (offset, mask) = chaos.mangle(&mut frame);
            assert!(offset < len);
            assert_ne!(mask, 0);
            assert_ne!(frame, original);
            assert_eq!(frame[offset], original[offset] ^ mask);
        }
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(chaos.mangle(&mut empty), (0, 0));
    }

    #[test]
    fn truncate_always_shortens_a_nonempty_frame() {
        let mut chaos = FrameChaos::new(6, ChaosRates::default());
        for len in [1usize, 2, 64, 1000] {
            let mut frame = vec![1u8; len];
            let kept = chaos.truncate_frame(&mut frame);
            assert!(kept < len, "strict prefix");
            assert_eq!(frame.len(), kept);
        }
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(chaos.truncate_frame(&mut empty), 0);
    }

    #[test]
    #[should_panic(expected = "chaos rates sum")]
    fn oversubscribed_rates_are_a_harness_bug() {
        let _ = FrameChaos::new(
            0,
            ChaosRates {
                drop: 0.8,
                corrupt: 0.8,
                ..ChaosRates::default()
            },
        );
    }

    #[test]
    fn label_faults_disagree_with_the_truth() {
        let sc = FailureScenario::new(vec![2, 6, 10]);
        let mut inj = FaultInjector::new(10);
        for _ in 0..20 {
            let (under, dropped) = inj.understate_scenario(&sc);
            assert!(sc.contains(dropped));
            assert!(!under.contains(dropped));
            assert_eq!(under.len(), sc.len() - 1);

            let (wrongly, omitted, named) = inj.mislabel_scenario(&sc, 16);
            assert!(sc.contains(omitted));
            assert!(!wrongly.contains(omitted));
            assert!(!sc.contains(named));
            assert!(wrongly.contains(named));
            assert_eq!(wrongly.len(), sc.len());
        }
    }
}
