//! Deterministic fault injection for the verified-repair pipeline.
//!
//! Every robustness claim in this workspace is only as good as the
//! faults it was tested against. This crate produces those faults,
//! **reproducibly**: a [`FaultInjector`] is seeded, every choice it
//! makes comes from that seed, and every injection returns a record
//! describing exactly what was done — so a failing test names its fault
//! and a CI seed matrix replays byte-identical corruption on every run.
//!
//! Four fault families, matching what verified repair must catch:
//!
//! * **Silent corruption** ([`FaultInjector::corrupt_survivor`],
//!   [`FaultInjector::corrupt_survivors`]): bit-flips in surviving
//!   blocks. The decode consumes them without complaint; only the
//!   surplus-row parity check can notice.
//! * **Geometry faults** ([`FaultInjector::truncated_stripe`],
//!   [`FaultInjector::misaligned_stripe`]): stripes whose buffers are
//!   shorter or shaped differently than the plan expects. These must be
//!   rejected structurally (`RepairError::GeometryMismatch`), never
//!   sliced out of bounds.
//! * **Label faults** ([`FaultInjector::understate_scenario`],
//!   [`FaultInjector::mislabel_scenario`]): erasure sets that disagree
//!   with what was actually lost — the "operator fat-fingers the device
//!   list" case. An understated label makes the decode read a lost
//!   (zeroed) sector as if it survived; escalation must find it.
//! * **Kernel faults** ([`FaultInjector::force_simd_miscompute`]):
//!   flips the process-global switch that makes every SIMD region
//!   kernel corrupt its first output byte, exercising the
//!   scalar-fallback self-check in `ppm-gf`.
//!
//! The injector is intentionally free of any dependency on the decode
//! stack: it mutates stripes and scenarios, and what the repair layer
//! does about it is the repair layer's test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ppm_codes::FailureScenario;
use ppm_codes::StripeLayout;
use ppm_stripe::Stripe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use ppm_gf::{force_simd_miscompute, kernel_fallbacks, simd_miscompute_forced};

/// One injected bit-flip: which sector, which byte, which mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Sector the flip landed in (always a surviving sector).
    pub sector: usize,
    /// Byte offset within the sector.
    pub offset: usize,
    /// Non-zero XOR mask applied to that byte.
    pub mask: u8,
}

/// A deterministic, seeded source of faults.
///
/// Two injectors built with the same seed produce the same sequence of
/// faults against the same inputs; the seed is carried in the record so
/// failures can name it.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector whose entire fault stream is determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Flips one random bit-pattern in one random *surviving* sector of
    /// `stripe` (surviving with respect to `scenario`), returning what
    /// was done. The mask is never zero, so the stripe always changes.
    ///
    /// # Panics
    /// Panics if every sector of the stripe is in `scenario` (nothing
    /// survives to corrupt) — a test-harness misuse, not a data fault.
    pub fn corrupt_survivor(&mut self, stripe: &mut Stripe, scenario: &FailureScenario) -> BitFlip {
        let survivors: Vec<usize> = (0..stripe.layout().sectors())
            .filter(|&s| !scenario.contains(s))
            .collect();
        assert!(
            !survivors.is_empty(),
            "no surviving sector to corrupt: scenario covers the stripe"
        );
        let sector = survivors[self.rng.random_range(0..survivors.len())];
        self.corrupt_sector(stripe, sector)
    }

    /// Like [`FaultInjector::corrupt_survivor`], but injects `count`
    /// flips into `count` *distinct* surviving sectors (or as many as
    /// survive, whichever is smaller). Returns one record per flip.
    pub fn corrupt_survivors(
        &mut self,
        stripe: &mut Stripe,
        scenario: &FailureScenario,
        count: usize,
    ) -> Vec<BitFlip> {
        let mut survivors: Vec<usize> = (0..stripe.layout().sectors())
            .filter(|&s| !scenario.contains(s))
            .collect();
        let mut flips = Vec::new();
        while flips.len() < count && !survivors.is_empty() {
            let pick = self.rng.random_range(0..survivors.len());
            let sector = survivors.swap_remove(pick);
            flips.push(self.corrupt_sector(stripe, sector));
        }
        flips
    }

    /// Flips a random non-zero mask into a random byte of `sector`.
    pub fn corrupt_sector(&mut self, stripe: &mut Stripe, sector: usize) -> BitFlip {
        let bytes = stripe.sector_mut(sector);
        let offset = self.rng.random_range(0..bytes.len());
        let mask = loop {
            let m: u8 = self.rng.random();
            if m != 0 {
                break m;
            }
        };
        bytes[offset] ^= mask;
        BitFlip {
            sector,
            offset,
            mask,
        }
    }

    /// A stripe assembled from device files that were each truncated by
    /// at least one sector-row: same sector size and strip count, fewer
    /// rows, so the sector count no longer matches the code's layout.
    /// Feeding it to a repair must fail structurally
    /// (`GeometryMismatch`), not slice out of bounds.
    ///
    /// Note that *uniform* shortening of every sector (same layout,
    /// smaller aligned `sector_bytes`) is deliberately not modeled as a
    /// fault: the parity-check relations hold per byte position, so such
    /// a stripe is indistinguishable from a legitimately smaller volume
    /// and no single-stripe check can object to it.
    ///
    /// # Panics
    /// Panics if `original` has a single sector-row on a single strip
    /// (nothing can be truncated away).
    pub fn truncated_stripe(&mut self, original: &Stripe) -> Stripe {
        let l = original.layout();
        let cut = if l.r > 1 {
            StripeLayout::new(l.n, self.rng.random_range(1..l.r))
        } else {
            assert!(l.n > 1, "cannot truncate a 1x1 stripe");
            StripeLayout::new(self.rng.random_range(1..l.n), 1)
        };
        Stripe::zeroed(cut, original.sector_bytes())
    }

    /// A stripe with a random *different* geometry (one strip more or
    /// fewer, or one sector-row more or fewer) — the "repair pointed at
    /// the wrong volume" fault. The sector count always differs from
    /// `original`'s, so geometry checks must trip.
    pub fn misaligned_stripe(&mut self, original: &Stripe) -> Stripe {
        let l = original.layout();
        let candidates = [
            StripeLayout::new(l.n + 1, l.r),
            StripeLayout::new(l.n.max(2) - 1, l.r),
            StripeLayout::new(l.n, l.r + 1),
            StripeLayout::new(l.n, l.r.max(2) - 1),
        ];
        let valid: Vec<StripeLayout> = candidates
            .into_iter()
            .filter(|c| c.sectors() != l.sectors())
            .collect();
        let pick = valid[self.rng.random_range(0..valid.len())];
        Stripe::zeroed(pick, original.sector_bytes())
    }

    /// Drops one randomly chosen faulty sector from `scenario`'s label —
    /// the stripe still lost it, but the repair isn't told. Returns the
    /// understated scenario and the dropped sector.
    ///
    /// # Panics
    /// Panics if `scenario` is empty (nothing to understate).
    pub fn understate_scenario(&mut self, scenario: &FailureScenario) -> (FailureScenario, usize) {
        let faulty = scenario.faulty();
        assert!(!faulty.is_empty(), "cannot understate an empty scenario");
        let drop_at = self.rng.random_range(0..faulty.len());
        let dropped = faulty[drop_at];
        let rest: Vec<usize> = faulty.iter().copied().filter(|&s| s != dropped).collect();
        (FailureScenario::new(rest), dropped)
    }

    /// Replaces one randomly chosen faulty sector in `scenario`'s label
    /// with a sector that did *not* fail — the label is the right size
    /// but points at the wrong block. Returns the mislabeled scenario,
    /// the truly-lost sector the label omits, and the healthy sector it
    /// wrongly names.
    ///
    /// # Panics
    /// Panics if `scenario` is empty or covers every sector of a stripe
    /// with `total_sectors` sectors (no healthy sector to misname).
    pub fn mislabel_scenario(
        &mut self,
        scenario: &FailureScenario,
        total_sectors: usize,
    ) -> (FailureScenario, usize, usize) {
        let faulty = scenario.faulty();
        assert!(!faulty.is_empty(), "cannot mislabel an empty scenario");
        let healthy: Vec<usize> = (0..total_sectors)
            .filter(|&s| !scenario.contains(s))
            .collect();
        assert!(!healthy.is_empty(), "no healthy sector to misname");
        let omit = faulty[self.rng.random_range(0..faulty.len())];
        let wrong = healthy[self.rng.random_range(0..healthy.len())];
        let relabeled: Vec<usize> = faulty
            .iter()
            .copied()
            .filter(|&s| s != omit)
            .chain([wrong])
            .collect();
        (FailureScenario::new(relabeled), omit, wrong)
    }

    /// Forces (or clears) the process-global SIMD-miscompute fault in
    /// `ppm-gf`: while set, every SIMD region kernel flips the first
    /// byte of its output. Re-exported here so harnesses drive all fault
    /// families through one object. **Global state** — tests toggling it
    /// must serialize (see `ppm-gf`'s `fault_hooks` tests).
    pub fn force_simd_miscompute(&mut self, enabled: bool) {
        force_simd_miscompute(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_codes::StripeLayout;

    fn stripe() -> Stripe {
        Stripe::zeroed(StripeLayout::new(4, 4), 64)
    }

    #[test]
    fn same_seed_same_faults() {
        let sc = FailureScenario::new(vec![2, 6]);
        let (mut a, mut b) = (stripe(), stripe());
        let fa = FaultInjector::new(99).corrupt_survivor(&mut a, &sc);
        let fb = FaultInjector::new(99).corrupt_survivor(&mut b, &sc);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        // A different seed diverges somewhere in a short stream.
        let mut c = stripe();
        let mut other = FaultInjector::new(100);
        let different = (0..8).any(|_| other.corrupt_survivor(&mut c, &sc) != fa);
        assert!(different);
    }

    #[test]
    fn corruption_hits_only_survivors_and_always_changes_bytes() {
        let sc = FailureScenario::new(vec![0, 5, 10, 15]);
        let mut inj = FaultInjector::new(7);
        for _ in 0..50 {
            let mut s = stripe();
            let flip = inj.corrupt_survivor(&mut s, &sc);
            assert!(!sc.contains(flip.sector));
            assert_ne!(flip.mask, 0);
            assert_eq!(s.sector(flip.sector)[flip.offset], flip.mask);
        }
    }

    #[test]
    fn multi_corruption_uses_distinct_sectors() {
        let sc = FailureScenario::new(vec![2, 6]);
        let mut inj = FaultInjector::new(8);
        let mut s = stripe();
        let flips = inj.corrupt_survivors(&mut s, &sc, 5);
        assert_eq!(flips.len(), 5);
        let mut sectors: Vec<usize> = flips.iter().map(|f| f.sector).collect();
        sectors.sort_unstable();
        sectors.dedup();
        assert_eq!(sectors.len(), 5, "distinct sectors");
        // Asking for more than survive caps at the survivor count.
        let mut s = stripe();
        assert_eq!(inj.corrupt_survivors(&mut s, &sc, 100).len(), 14);
    }

    #[test]
    fn geometry_faults_always_differ_from_the_original() {
        let orig = stripe();
        let mut inj = FaultInjector::new(9);
        for _ in 0..20 {
            let t = inj.truncated_stripe(&orig);
            assert_eq!(t.sector_bytes(), orig.sector_bytes());
            assert_eq!(t.layout().n, orig.layout().n);
            assert!(t.layout().sectors() < orig.layout().sectors());
            let m = inj.misaligned_stripe(&orig);
            assert_ne!(m.layout().sectors(), orig.layout().sectors());
        }
    }

    #[test]
    fn label_faults_disagree_with_the_truth() {
        let sc = FailureScenario::new(vec![2, 6, 10]);
        let mut inj = FaultInjector::new(10);
        for _ in 0..20 {
            let (under, dropped) = inj.understate_scenario(&sc);
            assert!(sc.contains(dropped));
            assert!(!under.contains(dropped));
            assert_eq!(under.len(), sc.len() - 1);

            let (wrongly, omitted, named) = inj.mislabel_scenario(&sc, 16);
            assert!(sc.contains(omitted));
            assert!(!wrongly.contains(omitted));
            assert!(!sc.contains(named));
            assert!(wrongly.contains(named));
            assert_eq!(wrongly.len(), sc.len());
        }
    }
}
