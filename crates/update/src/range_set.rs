//! Coalescing sets of dirty byte-ranges.
//!
//! Small writes arrive unaligned and overlapping; the parity math wants
//! whole dirty sectors. [`RangeSet`] sits between the two: it absorbs
//! writes as half-open byte ranges, merges anything overlapping *or
//! adjacent* (two abutting writes dirty one contiguous region — there is
//! no byte between them to keep clean), and reports exact dirty-byte
//! totals so a [`DirtyBuffer`](crate::DirtyBuffer) can enforce its
//! capacity in bytes actually pending, not bytes written.

/// A sorted set of disjoint, non-adjacent, half-open byte ranges
/// `[start, end)`.
///
/// The three invariants (sorted by start, pairwise disjoint, never
/// touching end-to-start) are maintained by [`RangeSet::insert`] and
/// checked by the property suite; `dirty_bytes` is therefore always the
/// exact measure of the union of every inserted range.
///
/// ```
/// use ppm_update::RangeSet;
///
/// let mut set = RangeSet::new();
/// assert_eq!(set.insert(10, 10), 10); // [10, 20)
/// assert_eq!(set.insert(30, 10), 10); // [30, 40) — disjoint
/// assert_eq!(set.insert(15, 20), 10); // bridges both: [10, 40)
/// assert_eq!(set.ranges(), &[(10, 40)]);
/// assert_eq!(set.dirty_bytes(), 30);
/// assert_eq!(set.insert(12, 3), 0); // already dirty
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// `(start, end)` pairs — sorted, disjoint, non-adjacent.
    ranges: Vec<(u64, u64)>,
    /// Cached Σ (end − start), kept in lockstep by `insert`/`clear`.
    dirty: u64,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Marks `[start, start + len)` dirty, merging with any overlapping
    /// or adjacent resident range, and returns how many of those bytes
    /// were *newly* dirty (0 when the range was already fully covered).
    /// Zero-length inserts are no-ops.
    pub fn insert(&mut self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = start.saturating_add(len);
        // Resident ranges strictly left of `start` (not even adjacent)
        // are unaffected; everything from the first range with
        // `range.end >= start` up to the last with `range.start <= end`
        // merges into one.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        let mut merged = (start, end);
        let mut absorbed = 0u64;
        for &(s, e) in self.ranges.get(lo..hi).unwrap_or(&[]) {
            merged.0 = merged.0.min(s);
            merged.1 = merged.1.max(e);
            absorbed += e - s;
        }
        self.ranges.splice(lo..hi, std::iter::once(merged));
        let newly = (merged.1 - merged.0) - absorbed;
        self.dirty += newly;
        newly
    }

    /// Total dirty bytes — the exact measure of the union.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }

    /// The resident ranges, sorted, disjoint, non-adjacent.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Iterates the resident `(start, end)` ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// True when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Forgets every range.
    pub fn clear(&mut self) {
        self.ranges.clear();
        self.dirty = 0;
    }

    /// True when byte `at` is dirty.
    pub fn contains(&self, at: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, e)| e <= at);
        matches!(self.ranges.get(i), Some(&(s, _)) if s <= at)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn set_of(ranges: &[(u64, u64)]) -> RangeSet {
        let mut s = RangeSet::new();
        for &(start, end) in ranges {
            s.insert(start, end - start);
        }
        s
    }

    #[test]
    fn disjoint_inserts_stay_sorted() {
        let s = set_of(&[(30, 40), (10, 20), (50, 60)]);
        assert_eq!(s.ranges(), &[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(s.dirty_bytes(), 30);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let s = set_of(&[(10, 20), (20, 30)]);
        assert_eq!(s.ranges(), &[(10, 30)]);
        assert_eq!(s.dirty_bytes(), 20);
    }

    #[test]
    fn overlap_bridges_many_ranges() {
        let mut s = set_of(&[(0, 5), (10, 15), (20, 25), (40, 45)]);
        // [4, 22) swallows the first three, not the fourth.
        assert_eq!(s.insert(4, 18), 22 - 4 - 1 - 5 - 2);
        assert_eq!(s.ranges(), &[(0, 25), (40, 45)]);
    }

    #[test]
    fn fully_covered_insert_returns_zero() {
        let mut s = set_of(&[(10, 50)]);
        assert_eq!(s.insert(20, 10), 0);
        assert_eq!(s.ranges(), &[(10, 50)]);
    }

    #[test]
    fn zero_length_is_a_noop() {
        let mut s = set_of(&[(10, 20)]);
        assert_eq!(s.insert(5, 0), 0);
        assert_eq!(s.ranges(), &[(10, 20)]);
    }

    #[test]
    fn contains_probes_boundaries() {
        let s = set_of(&[(10, 20)]);
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = set_of(&[(10, 20)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.dirty_bytes(), 0);
        assert_eq!(s.insert(0, 4), 4);
    }
}
