//! Write-trace input: file parsing and seeded synthetic generators.
//!
//! The engine replays flat-address write traces — each record says
//! "`len` bytes were written at byte `offset` of the data address
//! space". Two file formats are auto-detected (CSV `offset,len
//! [,timestamp]` and JSONL objects with the same fields), and three
//! seeded generators cover the standard access-pattern axes: Zipf
//! (skewed hot spots, the small-write-heavy case the dirty buffer
//! exists for), sequential (log-structured streaming), and uniform
//! (worst-case cache behavior).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One write record of a trace: `len` bytes at byte `offset` of the
/// volume's data address space, at logical time `timestamp` (replay
/// order; generators use the op index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte offset into the flat data address space.
    pub offset: u64,
    /// Bytes written.
    pub len: u64,
    /// Logical timestamp (replay happens in record order; this is
    /// carried for reporting only).
    pub timestamp: u64,
}

/// Why a trace file failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A line was neither a parsable CSV record nor a JSONL object.
    BadRecord {
        /// 1-based line number in the input.
        line: usize,
        /// What the parser choked on.
        reason: String,
    },
    /// The input contained no records at all.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadRecord { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::Empty => write!(f, "trace contains no records"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace from text, auto-detecting the format per line:
/// JSONL objects (`{"offset":O,"len":L,"timestamp":T}`) or CSV
/// (`offset,len[,timestamp]`). Blank lines, `#` comments, and a CSV
/// header line starting with `offset` are skipped; a missing timestamp
/// defaults to the record's 0-based index.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, TraceError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let op = if line.starts_with('{') {
            parse_jsonl(line, ops.len() as u64).map_err(|reason| TraceError::BadRecord {
                line: lineno,
                reason,
            })?
        } else {
            if ops.is_empty() && line.to_ascii_lowercase().starts_with("offset") {
                continue; // CSV header
            }
            parse_csv(line, ops.len() as u64).map_err(|reason| TraceError::BadRecord {
                line: lineno,
                reason,
            })?
        };
        ops.push(op);
    }
    if ops.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(ops)
}

fn parse_csv(line: &str, default_ts: u64) -> Result<TraceOp, String> {
    let mut fields = line.split(',').map(str::trim);
    let offset = fields
        .next()
        .ok_or("missing offset field")?
        .parse::<u64>()
        .map_err(|e| format!("bad offset: {e}"))?;
    let len = fields
        .next()
        .ok_or("missing len field")?
        .parse::<u64>()
        .map_err(|e| format!("bad len: {e}"))?;
    let timestamp = match fields.next() {
        Some(t) if !t.is_empty() => t
            .parse::<u64>()
            .map_err(|e| format!("bad timestamp: {e}"))?,
        _ => default_ts,
    };
    if fields.next().is_some() {
        return Err("too many fields (expected offset,len[,timestamp])".into());
    }
    Ok(TraceOp {
        offset,
        len,
        timestamp,
    })
}

/// Minimal JSONL field scan — the workspace carries no serialization
/// dependency, and the accepted grammar is flat objects with unsigned
/// integer values.
fn parse_jsonl(line: &str, default_ts: u64) -> Result<TraceOp, String> {
    let offset = scan_u64_field(line, "offset")?.ok_or("missing \"offset\"")?;
    let len = scan_u64_field(line, "len")?.ok_or("missing \"len\"")?;
    let timestamp = scan_u64_field(line, "timestamp")?.unwrap_or(default_ts);
    Ok(TraceOp {
        offset,
        len,
        timestamp,
    })
}

fn scan_u64_field(line: &str, key: &str) -> Result<Option<u64>, String> {
    let needle = format!("\"{key}\"");
    let Some(at) = line.find(&needle) else {
        return Ok(None);
    };
    let rest = line
        .get(at + needle.len()..)
        .ok_or_else(|| format!("truncated after \"{key}\""))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| format!("\"{key}\" not followed by ':'"))?
        .trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return Err(format!("\"{key}\" value is not an unsigned integer"));
    }
    digits
        .parse::<u64>()
        .map(Some)
        .map_err(|e| format!("bad \"{key}\": {e}"))
}

/// Which synthetic access pattern to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SynthKind {
    /// Zipf-distributed write offsets with the given skew exponent
    /// (`1.0` is the classic heavy-tailed hot spot; larger is hotter).
    Zipf(f64),
    /// Sequential writes sweeping the volume, wrapping at the end.
    Sequential,
    /// Uniformly random write offsets.
    Uniform,
}

impl SynthKind {
    /// Parses a CLI spelling: `zipf` (skew 1.0), `zipf:S`, `seq`,
    /// `sequential`, `uniform`.
    pub fn parse(spec: &str) -> Option<SynthKind> {
        let spec = spec.trim().to_ascii_lowercase();
        if let Some(skew) = spec.strip_prefix("zipf:") {
            return skew
                .parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0)
                .map(SynthKind::Zipf);
        }
        match spec.as_str() {
            "zipf" => Some(SynthKind::Zipf(1.0)),
            "seq" | "sequential" => Some(SynthKind::Sequential),
            "uniform" | "rand" => Some(SynthKind::Uniform),
            _ => None,
        }
    }
}

/// A uniform f64 in `[0, 1)` from the shim generator (which carries no
/// float distributions): 53 high bits of `next_u64`.
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates `ops` seeded synthetic writes of `write_bytes` bytes each
/// over a `volume_bytes`-byte address space. Timestamps are the op
/// index; writes that would run past the end of the volume are clamped.
///
/// Zipf mode ranks fixed-size slots of `write_bytes` bytes by a Zipf
/// CDF (inverse-transform sampled by binary search) and decorrelates
/// rank from address with a multiplicative hash, so the hot set is
/// scattered across the volume the way real hot blocks are — not piled
/// at offset zero.
///
/// # Panics
/// Panics if `volume_bytes` or `write_bytes` is zero, or if
/// `write_bytes > volume_bytes`.
pub fn synthesize(
    kind: SynthKind,
    ops: usize,
    volume_bytes: u64,
    write_bytes: u64,
    seed: u64,
) -> Vec<TraceOp> {
    assert!(
        volume_bytes > 0 && write_bytes > 0 && write_bytes <= volume_bytes,
        "synthesize needs 0 < write_bytes <= volume_bytes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let slots = (volume_bytes / write_bytes).max(1);
    let mut out = Vec::with_capacity(ops);
    // Zipf CDF over slot ranks, precomputed once.
    let cdf: Vec<f64> = match kind {
        SynthKind::Zipf(skew) => {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(slots as usize);
            for rank in 1..=slots {
                acc += 1.0 / (rank as f64).powf(skew);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            cdf
        }
        _ => Vec::new(),
    };
    for i in 0..ops {
        let offset = match kind {
            SynthKind::Sequential => (i as u64 * write_bytes) % (slots * write_bytes),
            SynthKind::Uniform => {
                // Unaligned: any byte offset that fits a full write.
                let span = volume_bytes - write_bytes + 1;
                rng.next_u64() % span
            }
            SynthKind::Zipf(_) => {
                let u = unit_f64(&mut rng);
                let rank = cdf.partition_point(|&c| c < u) as u64;
                // Decorrelate rank from address so the hot set is
                // scattered: odd multiplier → a permutation mod slots.
                let slot = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % slots;
                slot * write_bytes
            }
        };
        let len = write_bytes.min(volume_bytes - offset);
        out.push(TraceOp {
            offset,
            len,
            timestamp: i as u64,
        });
    }
    out
}

/// Renders ops in the CSV trace format [`parse_trace`] reads back.
pub fn to_csv(ops: &[TraceOp]) -> String {
    let mut out = String::from("offset,len,timestamp\n");
    for op in ops {
        out.push_str(&format!("{},{},{}\n", op.offset, op.len, op.timestamp));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrips_with_header_and_comments() {
        let text = "# a comment\noffset,len,timestamp\n0,16,0\n 32 , 8 \n{\"offset\":64,\"len\":4,\"timestamp\":9}\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp {
                    offset: 0,
                    len: 16,
                    timestamp: 0
                },
                TraceOp {
                    offset: 32,
                    len: 8,
                    timestamp: 1
                },
                TraceOp {
                    offset: 64,
                    len: 4,
                    timestamp: 9
                },
            ]
        );
        let again = parse_trace(&to_csv(&ops)).unwrap();
        assert_eq!(again, ops);
    }

    #[test]
    fn jsonl_field_order_does_not_matter() {
        let ops = parse_trace("{\"len\": 8, \"timestamp\": 3, \"offset\": 128}").unwrap();
        assert_eq!(
            ops,
            vec![TraceOp {
                offset: 128,
                len: 8,
                timestamp: 3
            }]
        );
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = parse_trace("0,16\nnot-a-record\n").unwrap_err();
        assert!(
            matches!(err, TraceError::BadRecord { line: 2, .. }),
            "{err}"
        );
        assert_eq!(
            parse_trace("# only comments\n").unwrap_err(),
            TraceError::Empty
        );
        let err = parse_trace("{\"offset\":1}").unwrap_err();
        assert!(err.to_string().contains("len"), "{err}");
    }

    #[test]
    fn generators_are_seeded_and_in_bounds() {
        for kind in [
            SynthKind::Zipf(1.0),
            SynthKind::Sequential,
            SynthKind::Uniform,
        ] {
            let a = synthesize(kind, 200, 1 << 16, 512, 7);
            let b = synthesize(kind, 200, 1 << 16, 512, 7);
            assert_eq!(a, b, "same seed, same trace ({kind:?})");
            if kind != SynthKind::Sequential {
                let c = synthesize(kind, 200, 1 << 16, 512, 8);
                assert_ne!(a, c, "different seed, different trace ({kind:?})");
            }
            for (i, op) in a.iter().enumerate() {
                assert!(op.offset + op.len <= 1 << 16, "{kind:?} op {i} in bounds");
                assert!(op.len > 0);
                assert_eq!(op.timestamp, i as u64);
            }
        }
    }

    #[test]
    fn sequential_wraps_and_zipf_concentrates() {
        let seq = synthesize(SynthKind::Sequential, 4, 1024, 512, 1);
        let offsets: Vec<u64> = seq.iter().map(|o| o.offset).collect();
        assert_eq!(offsets, vec![0, 512, 0, 512]);

        // Zipf with strong skew reuses a small hot set; uniform doesn't.
        let zipf = synthesize(SynthKind::Zipf(1.2), 500, 1 << 20, 4096, 3);
        let mut hot: Vec<u64> = zipf.iter().map(|o| o.offset).collect();
        hot.sort_unstable();
        hot.dedup();
        let uni = synthesize(SynthKind::Uniform, 500, 1 << 20, 4096, 3);
        let mut spread: Vec<u64> = uni.iter().map(|o| o.offset).collect();
        spread.sort_unstable();
        spread.dedup();
        assert!(
            hot.len() * 2 < spread.len(),
            "zipf hits {} distinct offsets, uniform {}",
            hot.len(),
            spread.len()
        );
    }

    #[test]
    fn synth_kind_parses_cli_spellings() {
        assert_eq!(SynthKind::parse("zipf"), Some(SynthKind::Zipf(1.0)));
        assert_eq!(SynthKind::parse("zipf:1.5"), Some(SynthKind::Zipf(1.5)));
        assert_eq!(SynthKind::parse("SEQ"), Some(SynthKind::Sequential));
        assert_eq!(SynthKind::parse("uniform"), Some(SynthKind::Uniform));
        assert_eq!(SynthKind::parse("zipf:-1"), None);
        assert_eq!(SynthKind::parse("what"), None);
    }
}
