//! The bounded dirty buffer: staged writes awaiting a flush.
//!
//! Writes land here first — payload bytes into a per-stripe staging
//! image, dirty extents into that stripe's [`RangeSet`] — and parity
//! math happens only when a stripe is flushed. The buffer is bounded in
//! *dirty bytes* (coalesced, not raw written bytes), and when it
//! overflows an [`EvictionPolicy`] picks which stripe to flush.

use crate::RangeSet;
use std::collections::HashMap;

/// Which pending stripe to flush when the buffer is over capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used: evict the stripe untouched the longest.
    Lru,
    /// Most-modified-block: evict the stripe containing the single
    /// dirtiest sector — that sector's delta is closest to "rewrite the
    /// whole block", so its buffering buys the least.
    MostModifiedBlock,
    /// Most-modified-stripe: evict the stripe with the most dirty bytes
    /// overall — frees the most buffer per flush, and the dirtiest
    /// stripe is the one nearest the re-encode crossover.
    MostModifiedStripe,
}

impl EvictionPolicy {
    /// Parses a CLI spelling: `lru`, `mmb`, `mms` (long forms accepted).
    pub fn parse(spec: &str) -> Option<EvictionPolicy> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "lru" => Some(EvictionPolicy::Lru),
            "mmb" | "most-modified-block" => Some(EvictionPolicy::MostModifiedBlock),
            "mms" | "most-modified-stripe" => Some(EvictionPolicy::MostModifiedStripe),
            _ => None,
        }
    }
}

/// One stripe's pending state: the dirty extents and a staging image of
/// the stripe's *data* address range holding the newest payload bytes.
///
/// Only bytes covered by `ranges` are meaningful in `data`; the rest is
/// whatever the staging buffer last held (zeroes on first touch).
#[derive(Clone, Debug)]
pub struct PendingStripe {
    /// Dirty extents, stripe-relative (offset 0 = first data byte of
    /// this stripe).
    pub ranges: RangeSet,
    /// Staging image of the stripe's data range; `ranges` says which
    /// bytes are live.
    pub data: Vec<u8>,
    /// Buffer tick of the last write into this stripe (LRU key).
    pub last_touch: u64,
    /// Writes staged into this stripe since it became pending.
    pub writes: usize,
}

/// A bounded buffer of [`PendingStripe`]s, keyed by stripe index.
///
/// `stage` accounts capacity in *newly dirty* bytes — overlapping
/// rewrites of hot bytes are free, which is exactly the economy a
/// dirty buffer exists to exploit. The buffer itself never flushes;
/// the engine asks [`DirtyBuffer::over_capacity`] and
/// [`DirtyBuffer::victim`] and settles the evicted stripe through the
/// repair session.
#[derive(Clone, Debug)]
pub struct DirtyBuffer {
    capacity: u64,
    dirty: u64,
    tick: u64,
    pending: HashMap<usize, PendingStripe>,
}

impl DirtyBuffer {
    /// A buffer bounded at `capacity` dirty bytes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-byte buffer cannot hold
    /// even one write, so every `stage` would immediately deadlock the
    /// evict loop.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "dirty buffer capacity must be non-zero");
        DirtyBuffer {
            capacity,
            dirty: 0,
            tick: 0,
            pending: HashMap::new(),
        }
    }

    /// Stages `payload` at `offset` within stripe `stripe` (both
    /// stripe-relative; the engine's address map does the splitting)
    /// and returns the newly dirty bytes this write added.
    ///
    /// `data_bytes` is the stripe's data-range size, fixed per volume;
    /// the staging image is allocated on the stripe's first pending
    /// write.
    ///
    /// # Panics
    /// Panics if the write runs past `data_bytes` — the address map
    /// upstream guarantees splits fit, so this is a caller bug.
    pub fn stage(&mut self, stripe: usize, offset: u64, payload: &[u8], data_bytes: usize) -> u64 {
        let end = offset as usize + payload.len();
        assert!(end <= data_bytes, "staged write outruns the stripe");
        self.tick += 1;
        let entry = self.pending.entry(stripe).or_insert_with(|| PendingStripe {
            ranges: RangeSet::new(),
            data: vec![0; data_bytes],
            last_touch: 0,
            writes: 0,
        });
        entry.last_touch = self.tick;
        entry.writes += 1;
        if let Some(slice) = entry.data.get_mut(offset as usize..end) {
            slice.copy_from_slice(payload);
        }
        let newly = entry.ranges.insert(offset, payload.len() as u64);
        self.dirty += newly;
        newly
    }

    /// True when pending dirty bytes exceed the capacity bound.
    pub fn over_capacity(&self) -> bool {
        self.dirty > self.capacity
    }

    /// Total coalesced dirty bytes pending.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }

    /// Stripes with pending writes.
    pub fn stripes_pending(&self) -> usize {
        self.pending.len()
    }

    /// The capacity bound, in dirty bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Picks the stripe `policy` would flush next, or `None` when the
    /// buffer is empty. Ties break toward the smaller stripe index so
    /// replay is deterministic across platforms.
    ///
    /// `sector_bytes` parameterizes [`EvictionPolicy::MostModifiedBlock`],
    /// which scores each stripe by its dirtiest single sector.
    pub fn victim(&self, policy: EvictionPolicy, sector_bytes: usize) -> Option<usize> {
        let score = |stripe: &usize, p: &PendingStripe| -> (u64, std::cmp::Reverse<usize>) {
            let key = match policy {
                // Oldest touch first → maximize the *negated* tick.
                EvictionPolicy::Lru => u64::MAX - p.last_touch,
                EvictionPolicy::MostModifiedBlock => dirtiest_sector_bytes(&p.ranges, sector_bytes),
                EvictionPolicy::MostModifiedStripe => p.ranges.dirty_bytes(),
            };
            (key, std::cmp::Reverse(*stripe))
        };
        self.pending
            .iter()
            .max_by_key(|(stripe, p)| score(stripe, p))
            .map(|(stripe, _)| *stripe)
    }

    /// Removes and returns stripe `stripe`'s pending state.
    pub fn take(&mut self, stripe: usize) -> Option<PendingStripe> {
        let p = self.pending.remove(&stripe)?;
        self.dirty -= p.ranges.dirty_bytes();
        Some(p)
    }

    /// Drains every pending stripe, in ascending stripe order.
    pub fn drain(&mut self) -> Vec<(usize, PendingStripe)> {
        let mut all: Vec<(usize, PendingStripe)> = self.pending.drain().collect();
        all.sort_by_key(|(stripe, _)| *stripe);
        self.dirty = 0;
        all
    }
}

/// The dirty-byte count of the dirtiest single sector in `ranges` —
/// the most-modified-block eviction score.
fn dirtiest_sector_bytes(ranges: &RangeSet, sector_bytes: usize) -> u64 {
    let sb = sector_bytes as u64;
    let mut best = 0u64;
    let mut current_sector = u64::MAX;
    let mut current = 0u64;
    for (start, end) in ranges.iter() {
        let mut s = start;
        while s < end {
            let sector = s / sb;
            let span = ((sector + 1) * sb).min(end) - s;
            if sector == current_sector {
                current += span;
            } else {
                best = best.max(current);
                current_sector = sector;
                current = span;
            }
            s += span;
        }
    }
    best.max(current)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn staging_accounts_coalesced_bytes() {
        let mut buf = DirtyBuffer::new(1024);
        assert_eq!(buf.stage(0, 0, &[1; 64], 256), 64);
        // Overlapping rewrite of the same bytes adds nothing.
        assert_eq!(buf.stage(0, 16, &[2; 32], 256), 0);
        // Adjacent extension adds only the extension.
        assert_eq!(buf.stage(0, 64, &[3; 8], 256), 8);
        assert_eq!(buf.dirty_bytes(), 72);
        assert_eq!(buf.stripes_pending(), 1);

        let p = buf.take(0).unwrap();
        assert_eq!(buf.dirty_bytes(), 0);
        assert_eq!(p.writes, 3);
        assert_eq!(p.ranges.ranges(), &[(0, 72)]);
        // Newest payload wins in the staging image.
        assert_eq!(&p.data[16..48], &[2; 32]);
        assert_eq!(&p.data[0..16], &[1; 16]);
        assert_eq!(&p.data[64..72], &[3; 8]);
    }

    #[test]
    fn lru_evicts_the_coldest_stripe() {
        let mut buf = DirtyBuffer::new(64);
        buf.stage(5, 0, &[1; 16], 256);
        buf.stage(2, 0, &[1; 16], 256);
        buf.stage(9, 0, &[1; 16], 256);
        buf.stage(5, 32, &[1; 16], 256); // stripe 5 is hot again
        assert_eq!(buf.victim(EvictionPolicy::Lru, 64), Some(2));
        buf.take(2);
        assert_eq!(buf.victim(EvictionPolicy::Lru, 64), Some(9));
    }

    #[test]
    fn mms_evicts_the_dirtiest_stripe() {
        let mut buf = DirtyBuffer::new(1024);
        buf.stage(1, 0, &[1; 16], 256);
        buf.stage(3, 0, &[1; 200], 256);
        buf.stage(7, 0, &[1; 64], 256);
        assert_eq!(buf.victim(EvictionPolicy::MostModifiedStripe, 64), Some(3));
    }

    #[test]
    fn mmb_scores_by_dirtiest_single_sector() {
        let mut buf = DirtyBuffer::new(1024);
        // Stripe 1: 3 sectors × 20 dirty bytes each (60 total).
        buf.stage(1, 0, &[1; 20], 256);
        buf.stage(1, 64, &[1; 20], 256);
        buf.stage(1, 128, &[1; 20], 256);
        // Stripe 2: one sector 50/64 dirty (50 total).
        buf.stage(2, 0, &[1; 50], 256);
        assert_eq!(buf.victim(EvictionPolicy::MostModifiedStripe, 64), Some(1));
        assert_eq!(buf.victim(EvictionPolicy::MostModifiedBlock, 64), Some(2));
    }

    #[test]
    fn victim_ties_break_toward_smaller_index() {
        let mut buf = DirtyBuffer::new(1024);
        buf.stage(4, 0, &[1; 16], 256);
        buf.stage(2, 0, &[1; 16], 256);
        assert_eq!(buf.victim(EvictionPolicy::MostModifiedStripe, 64), Some(2));
        assert_eq!(buf.victim(EvictionPolicy::MostModifiedBlock, 64), Some(2));
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut buf = DirtyBuffer::new(1024);
        buf.stage(9, 0, &[1; 8], 256);
        buf.stage(0, 0, &[1; 8], 256);
        buf.stage(4, 0, &[1; 8], 256);
        let drained = buf.drain();
        let order: Vec<usize> = drained.iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![0, 4, 9]);
        assert_eq!(buf.dirty_bytes(), 0);
        assert_eq!(buf.stripes_pending(), 0);
    }

    #[test]
    fn over_capacity_uses_coalesced_bytes() {
        let mut buf = DirtyBuffer::new(64);
        buf.stage(0, 0, &[1; 64], 256);
        assert!(!buf.over_capacity(), "exactly at capacity is fine");
        buf.stage(0, 0, &[2; 64], 256); // rewrite: no new dirty bytes
        assert!(!buf.over_capacity());
        buf.stage(1, 0, &[1; 1], 256);
        assert!(buf.over_capacity());
    }

    #[test]
    fn dirtiest_sector_spans_are_split_on_boundaries() {
        let mut r = RangeSet::new();
        // [60, 80): 4 bytes in sector 0, 16 in sector 1.
        r.insert(60, 20);
        assert_eq!(dirtiest_sector_bytes(&r, 64), 16);
        // Add more of sector 0 → sector 0 wins with 40.
        r.insert(10, 36);
        assert_eq!(dirtiest_sector_bytes(&r, 64), 40);
    }

    #[test]
    fn policy_parse_spellings() {
        assert_eq!(EvictionPolicy::parse("lru"), Some(EvictionPolicy::Lru));
        assert_eq!(
            EvictionPolicy::parse("MMB"),
            Some(EvictionPolicy::MostModifiedBlock)
        );
        assert_eq!(
            EvictionPolicy::parse("most-modified-stripe"),
            Some(EvictionPolicy::MostModifiedStripe)
        );
        assert_eq!(EvictionPolicy::parse("fifo"), None);
    }
}
