//! **ppm-update** — the trace-driven small-write engine of the PPM
//! workspace.
//!
//! Erasure-coded storage is dominated by small writes, and the update
//! cost of one data sector is exactly where asymmetric parity pays off:
//! an LRC write patches its one local parity plus the `g` globals while
//! RS touches all `m` parities. This crate turns the one-shot
//! [`UpdatePlan`](ppm_core::UpdatePlan) into a buffered write path:
//!
//! * [`RangeSet`] — coalescing dirty byte-ranges per stripe (merge
//!   adjacent/overlapping writes before any parity math);
//! * [`DirtyBuffer`] — a bounded buffer of pending deltas with
//!   pluggable [`EvictionPolicy`]s (LRU, most-modified-block,
//!   most-modified-stripe);
//! * [`UpdateEngine`] — the flush engine, choosing per flush between
//!   delta-parity patching and full-stripe re-encode by the paper's
//!   §III-B cost model, settling through a shared
//!   [`RepairService`](ppm_core::RepairService) on `&self` with
//!   arena-recycled buffers and per-flush
//!   [`ExecStats`](ppm_core::ExecStats);
//! * [`trace`] — a CSV/JSONL trace format (`offset,len[,timestamp]`)
//!   plus seeded Zipf / sequential / uniform generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod buffer;
mod engine;
mod range_set;
pub mod trace;

pub use buffer::{DirtyBuffer, EvictionPolicy, PendingStripe};
pub use engine::{
    AddressMap, EngineConfig, EngineStats, FlushMode, FlushReport, UpdateEngine, UpdateError,
};
pub use range_set::RangeSet;
pub use trace::{parse_trace, synthesize, SynthKind, TraceError, TraceOp};
