//! The flush engine: buffered small writes settled through the shared
//! repair session.
//!
//! [`UpdateEngine`] owns a volume of stripes and a [`DirtyBuffer`], and
//! borrows a [`RepairService`] (`&self` entry points — N engine flushes
//! can share one session). Each flush settles one stripe's pending
//! ranges by whichever route the §III-B cost model prices cheaper:
//!
//! * **delta patching** — per dirty data sector, `Δ = old ⊕ new` is
//!   multiplied into every dependent parity
//!   ([`RepairService::apply_update`]); cost = Σ per-sector
//!   `update_mult_xors`, small when few sectors are dirty and the code
//!   is asymmetric (LRC touches 1 local + g globals, RS all m);
//! * **full re-encode** — rewrite the dirty bytes and re-derive every
//!   parity through the cached encode plan; cost = the encode plan's
//!   `mult_XORs`, flat in dirtiness and cheaper past the crossover.
//!
//! The crossover — the dirty fraction where delta stops winning — is
//! exactly what the `update_throughput` bench reports per code family.

use crate::buffer::{DirtyBuffer, EvictionPolicy, PendingStripe};
use ppm_codes::{ErasureCode, FailureScenario};
use ppm_core::{ExecStats, RepairError, RepairService, UpdatePlan, UpdateStats};
use ppm_gf::GfWord;
use ppm_stripe::Stripe;
use std::sync::{Arc, Mutex, PoisonError};

/// How the engine decides each flush's route.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushMode {
    /// Per flush, pick the route the cost model prices cheaper.
    #[default]
    Auto,
    /// Always delta-patch (bench/diagnostic).
    DeltaOnly,
    /// Always re-encode the full stripe — the "naive" baseline the
    /// buffered path is measured against.
    ReencodeOnly,
}

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Dirty-byte bound of the buffer; exceeding it evicts via `policy`.
    pub buffer_bytes: u64,
    /// Which stripe to flush when over capacity.
    pub policy: EvictionPolicy,
    /// Flush-route selection.
    pub mode: FlushMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            buffer_bytes: 1 << 20,
            policy: EvictionPolicy::Lru,
            mode: FlushMode::Auto,
        }
    }
}

/// Why an engine operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The session layer rejected a flush.
    Repair(RepairError),
    /// A write runs past the volume's data address space.
    OutOfRange {
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Data bytes the volume actually addresses.
        volume_bytes: u64,
    },
    /// The engine was built over zero stripes.
    EmptyVolume,
    /// A stripe in the volume does not match the code's geometry.
    MixedGeometry {
        /// Sectors the code's layout expects.
        expected: usize,
        /// Sectors the offending stripe has.
        actual: usize,
    },
}

impl From<RepairError> for UpdateError {
    fn from(e: RepairError) -> Self {
        UpdateError::Repair(e)
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Repair(e) => write!(f, "flush failed: {e}"),
            UpdateError::OutOfRange {
                offset,
                len,
                volume_bytes,
            } => write!(
                f,
                "write [{offset}, {}) outruns the {volume_bytes}-byte volume",
                offset + len
            ),
            UpdateError::EmptyVolume => write!(f, "engine needs at least one stripe"),
            UpdateError::MixedGeometry { expected, actual } => {
                write!(f, "stripe has {actual} sectors, code expects {expected}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Flat byte addressing over a volume's *data* sectors.
///
/// The volume concatenates each stripe's data sectors (in ascending
/// sector order) into one address space: byte `o` lives in stripe
/// `o / data_per_stripe`, data-relative offset `o % data_per_stripe`.
/// Parity sectors are not addressable — they are derived state.
#[derive(Clone, Debug)]
pub struct AddressMap {
    /// Data sector indices within one stripe, ascending.
    data_sectors: Vec<usize>,
    sector_bytes: usize,
    stripes: usize,
}

impl AddressMap {
    /// Builds the map for `stripes` stripes of `code`'s geometry with
    /// `sector_bytes`-byte sectors.
    pub fn new<W: GfWord, C: ErasureCode<W>>(
        code: &C,
        sector_bytes: usize,
        stripes: usize,
    ) -> Self {
        AddressMap {
            data_sectors: code.data_sectors(),
            sector_bytes,
            stripes,
        }
    }

    /// Data bytes one stripe contributes to the address space.
    pub fn data_per_stripe(&self) -> u64 {
        (self.data_sectors.len() * self.sector_bytes) as u64
    }

    /// Total addressable data bytes of the volume.
    pub fn volume_bytes(&self) -> u64 {
        self.data_per_stripe() * self.stripes as u64
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> usize {
        self.sector_bytes
    }

    /// The stripe-local data sectors, ascending.
    pub fn data_sectors(&self) -> &[usize] {
        &self.data_sectors
    }

    /// The data sector index holding stripe-relative data byte `offset`.
    pub fn sector_of(&self, offset: u64) -> usize {
        self.data_sectors[(offset as usize) / self.sector_bytes]
    }

    /// Splits a volume-address write into per-stripe pieces
    /// `(stripe, stripe_relative_offset, len)`, in address order.
    pub fn split_write(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let per = self.data_per_stripe();
        let mut out = Vec::new();
        let mut at = offset;
        let end = offset + len;
        while at < end {
            let stripe = (at / per) as usize;
            let rel = at % per;
            let take = (per - rel).min(end - at);
            out.push((stripe, rel, take));
            at += take;
        }
        out
    }
}

/// What one flush did: route, size, and the session's instrumented
/// stats for the parity work.
#[derive(Clone, Debug)]
pub struct FlushReport {
    /// Volume stripe index flushed.
    pub stripe: usize,
    /// Coalesced dirty bytes settled.
    pub dirty_bytes: u64,
    /// Data sectors the flush rewrote.
    pub dirty_sectors: usize,
    /// Cost-model price of the delta route for this flush (`mult_XORs`).
    pub predicted_delta_mult_xors: usize,
    /// Cost-model price of the re-encode route (the encode plan's
    /// `mult_XORs`) — flat per stripe.
    pub predicted_reencode_mult_xors: usize,
    /// True when the flush re-encoded instead of delta-patching.
    pub full_reencode: bool,
    /// The session's executed ledger for the flush (`update` field set
    /// either way).
    pub exec: ExecStats,
}

/// Cumulative engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Writes accepted by [`UpdateEngine::write`].
    pub writes: usize,
    /// Raw bytes those writes carried.
    pub bytes_written: u64,
    /// Bytes absorbed by coalescing (raw − newly-dirty): rewrites of
    /// already-dirty bytes that cost no buffer and no extra flush work.
    pub bytes_coalesced: u64,
    /// Flushes executed (evictions + final drains).
    pub flushes: usize,
    /// Flushes that took the delta route.
    pub delta_flushes: usize,
    /// Flushes that took the re-encode route.
    pub reencode_flushes: usize,
    /// Flushes forced by the capacity bound (vs requested drains).
    pub evictions: usize,
    /// Parity-sector region patches applied across all delta flushes.
    pub parity_patches: u64,
}

impl EngineStats {
    /// Renders the counters as one JSON object (hand-rolled; the
    /// workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"writes\":{},\"bytes_written\":{},\"bytes_coalesced\":{},\"flushes\":{},\"delta_flushes\":{},\"reencode_flushes\":{},\"evictions\":{},\"parity_patches\":{}}}",
            self.writes,
            self.bytes_written,
            self.bytes_coalesced,
            self.flushes,
            self.delta_flushes,
            self.reencode_flushes,
            self.evictions,
            self.parity_patches
        )
    }

    fn absorb(&mut self, report: &FlushReport, eviction: bool) {
        self.flushes += 1;
        if report.full_reencode {
            self.reencode_flushes += 1;
        } else {
            self.delta_flushes += 1;
        }
        if eviction {
            self.evictions += 1;
        }
        if let Some(u) = report.exec.update {
            self.parity_patches += u.parity_patches as u64;
        }
    }
}

/// A buffered, trace-driven write path over a volume of stripes,
/// flushing through a shared [`RepairService`].
///
/// ```
/// use ppm_codes::LrcCode;
/// use ppm_core::RepairService;
/// use ppm_update::{EngineConfig, UpdateEngine};
/// use ppm_stripe::random_data_stripe;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let code = LrcCode::<u8>::new(6, 2, 2, 4).unwrap();
/// let service = RepairService::new(code, Default::default());
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut stripes = Vec::new();
/// for _ in 0..4 {
///     let mut s = random_data_stripe(service.code(), 64, &mut rng);
///     service.encode(&mut s).unwrap();
///     stripes.push(s);
/// }
///
/// let mut engine = UpdateEngine::new(&service, stripes, EngineConfig::default()).unwrap();
/// engine.write(100, &[0xAB; 40]).unwrap(); // unaligned small write
/// let reports = engine.flush_all(1).unwrap();
/// assert_eq!(reports.len(), 1);
/// assert!(!reports[0].full_reencode, "one dirty sector: delta wins");
/// ```
pub struct UpdateEngine<'s, W: GfWord, C: ErasureCode<W>> {
    service: &'s RepairService<W, C>,
    volume: Vec<Stripe>,
    map: AddressMap,
    buffer: DirtyBuffer,
    config: EngineConfig,
    plan: Arc<UpdatePlan<W>>,
    /// The encode plan's `mult_XORs` — the flat re-encode price every
    /// flush compares against.
    reencode_mult_xors: usize,
    stats: EngineStats,
}

impl<'s, W: GfWord, C: ErasureCode<W>> UpdateEngine<'s, W, C> {
    /// Builds an engine over `volume` (stripes of `service`'s code,
    /// already parity-consistent). Captures the session's update plan
    /// and the encode plan's cost once; both are shared with any other
    /// user of the session.
    pub fn new(
        service: &'s RepairService<W, C>,
        volume: Vec<Stripe>,
        config: EngineConfig,
    ) -> Result<Self, UpdateError> {
        if volume.is_empty() {
            return Err(UpdateError::EmptyVolume);
        }
        let expected = service.code().layout().sectors();
        for stripe in &volume {
            if stripe.layout().sectors() != expected {
                return Err(UpdateError::MixedGeometry {
                    expected,
                    actual: stripe.layout().sectors(),
                });
            }
        }
        let sector_bytes = volume[0].sector_bytes();
        for stripe in &volume {
            if stripe.sector_bytes() != sector_bytes {
                return Err(UpdateError::MixedGeometry {
                    expected: expected * sector_bytes,
                    actual: stripe.layout().sectors() * stripe.sector_bytes(),
                });
            }
        }
        let map = AddressMap::new(service.code(), sector_bytes, volume.len());
        let plan = service.update_plan()?;
        let encode_scenario = FailureScenario::new(service.code().parity_sectors());
        let (encode_plan, _) = service.plan_for(&encode_scenario)?;
        Ok(UpdateEngine {
            service,
            volume,
            map,
            buffer: DirtyBuffer::new(config.buffer_bytes),
            config,
            plan,
            reencode_mult_xors: encode_plan.mult_xors(),
            stats: EngineStats::default(),
        })
    }

    /// Stages a write of `payload` at volume byte `offset`, splitting
    /// across stripes as needed, then evicts (serially, on the calling
    /// thread) while the buffer is over capacity. Returns the reports
    /// of any flushes the write forced.
    pub fn write(&mut self, offset: u64, payload: &[u8]) -> Result<Vec<FlushReport>, UpdateError> {
        let len = payload.len() as u64;
        if offset + len > self.map.volume_bytes() {
            return Err(UpdateError::OutOfRange {
                offset,
                len,
                volume_bytes: self.map.volume_bytes(),
            });
        }
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut consumed = 0usize;
        let mut newly = 0u64;
        for (stripe, rel, take) in self.map.split_write(offset, len) {
            let piece = &payload[consumed..consumed + take as usize];
            newly += self
                .buffer
                .stage(stripe, rel, piece, self.map.data_per_stripe() as usize);
            consumed += take as usize;
        }
        self.stats.bytes_coalesced += len - newly;

        let mut reports = Vec::new();
        while self.buffer.over_capacity() {
            let Some(victim) = self
                .buffer
                .victim(self.config.policy, self.map.sector_bytes())
            else {
                break;
            };
            let Some(pending) = self.buffer.take(victim) else {
                break;
            };
            let report = flush_one(
                self.service,
                &self.plan,
                &self.map,
                self.config.mode,
                self.reencode_mult_xors,
                victim,
                &mut self.volume[victim],
                pending,
            )?;
            self.stats.absorb(&report, true);
            reports.push(report);
        }
        Ok(reports)
    }

    /// Flushes every pending stripe with up to `workers` OS threads
    /// driving the shared session concurrently (`&self` flushes — the
    /// stripes are disjoint `&mut` borrows, the session is shared).
    /// Reports come back in ascending stripe order.
    pub fn flush_all(&mut self, workers: usize) -> Result<Vec<FlushReport>, UpdateError> {
        let workers = workers.max(1);
        let pending = self.buffer.drain();
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        // Pair each pending stripe with its disjoint `&mut Stripe`.
        let mut by_index: std::collections::HashMap<usize, PendingStripe> =
            pending.into_iter().collect();
        let mut jobs: Vec<(usize, &mut Stripe, PendingStripe)> = Vec::new();
        for (i, stripe) in self.volume.iter_mut().enumerate() {
            if let Some(p) = by_index.remove(&i) {
                jobs.push((i, stripe, p));
            }
        }
        let service = self.service;
        let plan = &self.plan;
        let map = &self.map;
        let mode = self.config.mode;
        let reencode = self.reencode_mult_xors;

        let mut reports: Vec<FlushReport> = if workers == 1 {
            let mut out = Vec::with_capacity(jobs.len());
            for (index, stripe, p) in jobs {
                out.push(flush_one(
                    service, plan, map, mode, reencode, index, stripe, p,
                )?);
            }
            out
        } else {
            let source = Mutex::new(jobs.into_iter());
            let results: Vec<Result<Vec<FlushReport>, UpdateError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let next =
                                    source.lock().unwrap_or_else(PoisonError::into_inner).next();
                                let Some((index, stripe, p)) = next else {
                                    break;
                                };
                                out.push(flush_one(
                                    service, plan, map, mode, reencode, index, stripe, p,
                                )?);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(v) => v,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            let mut out = Vec::new();
            for worker_out in results {
                out.extend(worker_out?);
            }
            out
        };
        reports.sort_by_key(|r| r.stripe);
        for r in &reports {
            self.stats.absorb(r, false);
        }
        Ok(reports)
    }

    /// Coalesced dirty bytes currently buffered.
    pub fn pending_bytes(&self) -> u64 {
        self.buffer.dirty_bytes()
    }

    /// Stripes with buffered writes.
    pub fn pending_stripes(&self) -> usize {
        self.buffer.stripes_pending()
    }

    /// Cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine's address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// The flat re-encode price (`mult_XORs`) flushes compare against.
    pub fn reencode_mult_xors(&self) -> usize {
        self.reencode_mult_xors
    }

    /// The volume (pending writes are *not* reflected until flushed).
    pub fn volume(&self) -> &[Stripe] {
        &self.volume
    }

    /// Consumes the engine, returning the volume. Call
    /// [`UpdateEngine::flush_all`] first — buffered writes still
    /// pending are dropped.
    pub fn into_volume(self) -> Vec<Stripe> {
        self.volume
    }
}

/// Settles one stripe's pending ranges. Route choice: `mode`, with
/// [`FlushMode::Auto`] taking delta iff its predicted `mult_XORs` are
/// strictly cheaper than the flat re-encode price.
#[allow(clippy::too_many_arguments)]
fn flush_one<W: GfWord, C: ErasureCode<W>>(
    service: &RepairService<W, C>,
    plan: &UpdatePlan<W>,
    map: &AddressMap,
    mode: FlushMode,
    reencode_mult_xors: usize,
    index: usize,
    stripe: &mut Stripe,
    pending: PendingStripe,
) -> Result<FlushReport, UpdateError> {
    let sector_bytes = map.sector_bytes();
    let dirty_bytes = pending.ranges.dirty_bytes();

    // Dirty data sectors, ascending, from the coalesced ranges.
    let mut dirty_sectors: Vec<usize> = Vec::new();
    for (start, end) in pending.ranges.iter() {
        let first = (start as usize) / sector_bytes;
        let last = ((end - 1) as usize) / sector_bytes;
        for slot in first..=last {
            if dirty_sectors.last() != Some(&slot) {
                dirty_sectors.push(slot);
            }
        }
    }

    let mut predicted_delta = 0usize;
    for &slot in &dirty_sectors {
        predicted_delta += plan.update_mult_xors(map.data_sectors()[slot])?;
    }
    let use_delta = match mode {
        FlushMode::DeltaOnly => true,
        FlushMode::ReencodeOnly => false,
        FlushMode::Auto => predicted_delta < reencode_mult_xors,
    };

    let exec = if use_delta {
        // Per dirty sector: new contents = old bytes overlaid with the
        // staged ranges. Sector buffers cycle through the session arena.
        let mut buffers: Vec<Vec<u8>> = Vec::with_capacity(dirty_sectors.len());
        for &slot in &dirty_sectors {
            let sector = map.data_sectors()[slot];
            let mut buf = service.arena().take(sector_bytes);
            buf.copy_from_slice(stripe.sector(sector));
            overlay(&mut buf, slot, sector_bytes, &pending);
            buffers.push(buf);
        }
        let writes: Vec<(usize, &[u8])> = dirty_sectors
            .iter()
            .zip(&buffers)
            .map(|(&slot, buf)| (map.data_sectors()[slot], buf.as_slice()))
            .collect();
        let result = service.apply_update(stripe, &writes);
        for buf in buffers {
            service.arena().give(buf);
        }
        let mut exec = result?;
        if let Some(u) = &mut exec.update {
            u.dirty_bytes = dirty_bytes;
        }
        exec
    } else {
        // Overlay the staged bytes directly, then re-derive every
        // parity through the cached encode plan.
        for &slot in &dirty_sectors {
            let sector = map.data_sectors()[slot];
            let mut buf = stripe.sector(sector).to_vec();
            overlay(&mut buf, slot, sector_bytes, &pending);
            stripe.write_sector(sector, &buf);
        }
        let mut exec = service.encode(stripe)?;
        exec.update = Some(UpdateStats {
            sectors_patched: dirty_sectors.len(),
            parity_patches: 0,
            full_reencode: true,
            dirty_bytes,
        });
        exec
    };

    Ok(FlushReport {
        stripe: index,
        dirty_bytes,
        dirty_sectors: dirty_sectors.len(),
        predicted_delta_mult_xors: predicted_delta,
        predicted_reencode_mult_xors: reencode_mult_xors,
        full_reencode: !use_delta,
        exec,
    })
}

/// Copies the staged ranges intersecting data-sector slot `slot` from
/// the pending image into `buf` (a full-sector buffer).
fn overlay(buf: &mut [u8], slot: usize, sector_bytes: usize, pending: &PendingStripe) {
    let sector_start = (slot * sector_bytes) as u64;
    let sector_end = sector_start + sector_bytes as u64;
    for (start, end) in pending.ranges.iter() {
        let s = start.max(sector_start);
        let e = end.min(sector_end);
        if s >= e {
            continue;
        }
        let src = &pending.data[s as usize..e as usize];
        let rel = (s - sector_start) as usize;
        buf[rel..rel + src.len()].copy_from_slice(src);
    }
}
