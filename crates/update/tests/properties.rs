//! Property-based tests of the [`RangeSet`] invariants: sorted,
//! disjoint, non-adjacent ranges; insertion-order independence of the
//! coalesced result; and dirty-byte conservation against both a bitmap
//! reference and the sum of per-insert newly-dirty returns.

use ppm_update::RangeSet;
use proptest::prelude::*;
use proptest::strategy::Strategy as ProptestStrategy;

/// Strategy: up to 24 writes in a 512-byte space, lengths 0..=64 (zero
/// lengths exercise the no-op path).
fn writes() -> impl ProptestStrategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..512, 0u64..=64), 0..24)
}

fn build(writes: &[(u64, u64)]) -> RangeSet {
    let mut set = RangeSet::new();
    for &(start, len) in writes {
        set.insert(start, len);
    }
    set
}

/// Reference model: one bool per byte.
fn bitmap(writes: &[(u64, u64)]) -> Vec<bool> {
    let mut map = vec![false; 512 + 64 + 1];
    for &(start, len) in writes {
        for b in start..start + len {
            map[b as usize] = true;
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The resident ranges are always sorted by start, pairwise
    /// disjoint, never empty, and never adjacent (adjacent ranges must
    /// have merged).
    #[test]
    fn invariants_hold(writes in writes()) {
        let set = build(&writes);
        let ranges = set.ranges();
        for &(s, e) in ranges {
            prop_assert!(s < e, "empty range resident");
        }
        for pair in ranges.windows(2) {
            prop_assert!(
                pair[0].1 < pair[1].0,
                "ranges {:?} and {:?} overlap or touch",
                pair[0],
                pair[1]
            );
        }
    }

    /// The coalesced result is a pure function of the *set* of writes:
    /// any insertion order produces identical ranges and totals.
    #[test]
    fn insertion_order_is_irrelevant(writes in writes(), rot in 0usize..24) {
        let forward = build(&writes);
        let mut reversed: Vec<_> = writes.clone();
        reversed.reverse();
        let mut rotated = writes.clone();
        if !rotated.is_empty() {
            let by = rot % rotated.len();
            rotated.rotate_left(by);
        }
        prop_assert_eq!(&forward, &build(&reversed));
        prop_assert_eq!(&forward, &build(&rotated));
    }

    /// `dirty_bytes` equals the bitmap population count, the measure of
    /// the resident ranges, and the sum of every insert's newly-dirty
    /// return — three independent routes to the same total.
    #[test]
    fn dirty_bytes_conserved(writes in writes()) {
        let map = bitmap(&writes);
        let truth = map.iter().filter(|&&b| b).count() as u64;

        let mut set = RangeSet::new();
        let mut newly_sum = 0u64;
        for &(start, len) in &writes {
            newly_sum += set.insert(start, len);
        }
        let measure: u64 = set.iter().map(|(s, e)| e - s).sum();

        prop_assert_eq!(set.dirty_bytes(), truth);
        prop_assert_eq!(newly_sum, truth);
        prop_assert_eq!(measure, truth);

        // `contains` agrees with the bitmap byte for byte.
        for (at, &dirty) in map.iter().enumerate() {
            prop_assert_eq!(set.contains(at as u64), dirty);
        }
    }
}
