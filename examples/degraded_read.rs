//! The paper's cloud-side motivation: degraded reads under an LRC code.
//!
//! "Transient data unavailable occupy for 90% of data center failure
//! events" — LRC dedicates local parities so a single unavailable block is
//! repaired from its small local group instead of the whole stripe. This
//! example shows how PPM's independence exploitation discovers exactly
//! that: the unavailable block forms a 1×1 independent sub-matrix over its
//! local group, and a multi-block outage decodes its local repairs in
//! parallel.
//!
//! Run with: `cargo run --release --example degraded_read`

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, Decoder, DecoderConfig, ErasureCode, FailureScenario, LrcCode, Partition, Strategy,
};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    // Azure-style (12, 2, 2)-LRC: 12 data disks in two local groups of 6.
    let code = LrcCode::<u8>::new(12, 2, 2, 8).expect("LRC instance");
    println!(
        "code: {} (storage cost {:.2})",
        code.name(),
        code.storage_cost()
    );

    let decoder = Decoder::new(DecoderConfig::default());
    let mut rng = StdRng::seed_from_u64(17);
    let mut stripe = random_data_stripe(&code, 32 * 1024, &mut rng);
    encode(&code, &decoder, &mut stripe).expect("encode");
    let pristine = stripe.clone();
    let h = code.parity_check_matrix();
    let layout = code.layout();

    // --- Degraded read of one block -----------------------------------------
    let block = layout.sector(3, 2); // row 3, data disk 2 (local group 0)
    let one = FailureScenario::new(vec![block]);
    let part = Partition::build(&h, &one);
    println!("\nsingle unavailable block (row 3, disk 2):");
    println!(
        "  partition: p = {}, H_rest = {}",
        part.degree(),
        if part.rest.is_none() {
            "null"
        } else {
            "non-null"
        }
    );
    let plan = decoder.plan(&h, &one, Strategy::PpmAuto).expect("plan");
    println!(
        "  repair reads {} blocks ({} mult_XORs) — the local group only",
        plan.mult_xors(),
        plan.mult_xors()
    );
    assert_eq!(
        plan.mult_xors(),
        code.group_size(),
        "local repair = XOR of the group"
    );
    let mut broken = pristine.clone();
    broken.erase(&one);
    let t = Instant::now();
    decoder.decode(&plan, &mut broken).expect("decode");
    println!("  degraded read served in {:.2?}", t.elapsed());
    assert_eq!(broken, pristine);

    // --- A whole unavailable disk: r parallel local repairs -----------------
    let disk = FailureScenario::whole_disks(layout, &[5]);
    let part = Partition::build(&h, &disk);
    println!("\nwhole disk 5 unavailable ({} blocks):", disk.len());
    println!(
        "  partition: p = {} independent local repairs, H_rest = {}",
        part.degree(),
        if part.rest.is_none() {
            "null"
        } else {
            "non-null"
        }
    );
    let plan = decoder.plan(&h, &disk, Strategy::PpmAuto).expect("plan");
    let mut broken = pristine.clone();
    broken.erase(&disk);
    let t = Instant::now();
    decoder.decode(&plan, &mut broken).expect("decode");
    println!(
        "  repaired with T = {} threads in {:.2?}",
        decoder.config().threads,
        t.elapsed()
    );
    assert_eq!(broken, pristine);

    // --- Maximum tolerable outage: l + g disks -------------------------------
    let worst = code
        .decodable_disk_failures(code.l() + code.g(), &mut rng, 500)
        .expect("decodable worst case");
    println!(
        "\nworst case: disks {:?} unavailable:",
        worst.failed_disks(layout)
    );
    for (label, strategy) in [
        ("traditional (C1)", Strategy::TraditionalNormal),
        ("PPM (auto)      ", Strategy::PpmAuto),
    ] {
        let plan = decoder.plan(&h, &worst, strategy).expect("plan");
        let mut broken = pristine.clone();
        broken.erase(&worst);
        let t = Instant::now();
        decoder.decode(&plan, &mut broken).expect("decode");
        assert_eq!(broken, pristine);
        println!(
            "  {label}: {:>9.2?} ({} mult_XORs, parallelism {})",
            t.elapsed(),
            plan.mult_xors(),
            plan.parallelism()
        );
    }
}
