//! The paper's motivating single-machine scenario: simultaneous whole-disk
//! failures *and* latent sector errors, protected by an SD code.
//!
//! Encodes a large stripe under `SD^{2,2}_{8,16}`, injects the worst-case
//! failure (2 dead disks + 2 additional bad sectors), and decodes it with
//! the traditional parity-check-matrix method and with PPM, timing both.
//!
//! Run with: `cargo run --release --example disk_and_sector_failure`

use ppm::stripe::random_data_stripe;
use ppm::{encode, parity_consistent, Decoder, DecoderConfig, ErasureCode, SdCode, Strategy};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    let (n, r, m, s) = (8, 16, 2, 2);
    let code = SdCode::<u8>::search(n, r, m, s, 1, 4).expect("coefficient search");
    println!("code: {}", code.name());

    let decoder = Decoder::new(DecoderConfig::default());
    let mut rng = StdRng::seed_from_u64(99);
    // ~8 MiB stripe: 8*16 sectors of 64 KiB.
    let mut stripe = random_data_stripe(&code, 64 * 1024, &mut rng);
    let t = Instant::now();
    encode(&code, &decoder, &mut stripe).expect("encode");
    println!(
        "encoded {:.1} MiB stripe in {:.2?}",
        stripe.total_bytes() as f64 / (1 << 20) as f64,
        t.elapsed()
    );
    let h = code.parity_check_matrix();
    assert!(parity_consistent(&h, &stripe, decoder.config().backend));
    let pristine = stripe.clone();

    // Worst case: m whole disks + s sectors on z = 1 row.
    let scenario = code
        .decodable_worst_case(1, &mut rng, 200)
        .expect("scenario");
    let layout = code.layout();
    println!(
        "failure: disks {:?} fully dead + sector errors at {:?} ({} sectors total)",
        scenario.failed_disks(layout),
        scenario
            .faulty()
            .iter()
            .filter(|&&l| !scenario.failed_disks(layout).contains(&layout.col_of(l)))
            .map(|&l| (layout.row_of(l), layout.col_of(l)))
            .collect::<Vec<_>>(),
        scenario.len()
    );

    for (label, strategy) in [
        (
            "traditional (normal sequence, C1)",
            Strategy::TraditionalNormal,
        ),
        (
            "traditional (matrix-first, C2)   ",
            Strategy::TraditionalMatrixFirst,
        ),
        ("PPM (auto)                       ", Strategy::PpmAuto),
    ] {
        let mut broken = pristine.clone();
        broken.erase(&scenario);
        let plan = decoder.plan(&h, &scenario, strategy).expect("plan");
        let t = Instant::now();
        decoder.decode(&plan, &mut broken).expect("decode");
        let dt = t.elapsed();
        assert_eq!(broken, pristine, "{label}: recovery must be bit-exact");
        println!(
            "{label}: {:>9.2?}  ({} mult_XORs, parallelism {})",
            dt,
            plan.mult_xors(),
            plan.parallelism()
        );
    }
}
