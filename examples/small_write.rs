//! Small writes: incremental parity updates instead of full re-encodes.
//!
//! Updates one data block and patches only the parity blocks that depend
//! on it (`Δ`-update). The number of parity sectors touched per write is
//! where asymmetric parity pays off: an LRC data write touches its one
//! local parity plus the `g` globals; RS with comparable reliability
//! touches every parity strip.
//!
//! Run with: `cargo run --release --example small_write`

use ppm::core::encode;
use ppm::stripe::random_data_stripe;
use ppm::{
    parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, LrcCode, RsCode, SdCode,
    UpdatePlan,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

fn demo<W: ppm::GfWord, C: ErasureCode<W>>(code: &C, seed: u64) {
    let decoder = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stripe = random_data_stripe(code, 64 * 1024, &mut rng);
    encode(code, &decoder, &mut stripe).expect("encode");
    let h = code.parity_check_matrix();

    let plan = UpdatePlan::build(code, Backend::Auto).expect("update plan");
    let target = code.data_sectors()[0];
    let touched = plan.parity_touched(target).expect("data sector");

    let mut new_data = vec![0u8; stripe.sector_bytes()];
    rng.fill(new_data.as_mut_slice());

    // Incremental update.
    let t = Instant::now();
    plan.apply(&mut stripe, target, &new_data).expect("apply");
    let incremental = t.elapsed();
    assert!(parity_consistent(&h, &stripe, Backend::Auto));

    // Full re-encode of the same write, for comparison.
    let mut full = stripe.clone();
    let t = Instant::now();
    encode(code, &decoder, &mut full).expect("re-encode");
    let reencode = t.elapsed();
    assert_eq!(full, stripe, "incremental update must equal re-encode");

    println!(
        "{:<28} parity touched: {:>2}/{:<2}   Δ-update {:>9.2?}   re-encode {:>9.2?}",
        code.name(),
        touched.len(),
        code.parity_sectors().len(),
        incremental,
        reencode,
    );
}

fn main() {
    println!("one 64 KiB-sector data write, parity patched incrementally:\n");
    demo(&RsCode::<u8>::new(12, 4, 8).unwrap(), 1);
    demo(&LrcCode::<u8>::new(12, 2, 2, 8).unwrap(), 2);
    demo(&SdCode::<u8>::search(14, 8, 2, 2, 3, 3).unwrap(), 3);
    println!(
        "\nLRC touches 1 local + g globals per row-write; RS touches all m\n\
         parities — the locality asymmetric parity codes are designed for."
    );
}
