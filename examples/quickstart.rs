//! Quickstart: the paper's running example, end to end.
//!
//! Builds `SD^{1,1}_{4,4}(8|1,2)` (Figures 2–3 of the paper), encodes a
//! stripe, injects the paper's failure scenario {b2, b6, b10, b13, b14},
//! and walks through every stage of PPM: log table, partition,
//! calculation-sequence costs, parallel decode, verification.
//!
//! Run with: `cargo run --release --example quickstart`

use ppm::core::cost::{analyze, SdClosedForm};
use ppm::stripe::random_data_stripe;
use ppm::{
    encode, parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, FailureScenario,
    LogTable, Partition, SdCode, Strategy,
};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // --- The code instance -------------------------------------------------
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).expect("paper instance");
    println!("code:      {}", code.name());
    println!("symmetric: {}", code.is_symmetric());
    let h = code.parity_check_matrix();
    println!("H:         {} x {} parity-check matrix", h.rows(), h.cols());

    // --- Encode a stripe ----------------------------------------------------
    let decoder = Decoder::new(DecoderConfig::default());
    let mut rng = StdRng::seed_from_u64(2015);
    let mut stripe = random_data_stripe(&code, 64 * 1024, &mut rng);
    encode(&code, &decoder, &mut stripe).expect("encode");
    assert!(parity_consistent(&h, &stripe, Backend::Auto));
    println!(
        "encoded:   {} B stripe, H·B = 0 verified",
        stripe.total_bytes()
    );

    // --- The paper's failure scenario --------------------------------------
    let scenario = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    println!("\nfailures:  sectors {:?}", scenario.faulty());

    let log = LogTable::build(&h, &scenario);
    println!("log table  (i, t_i, l_i):");
    for row in log.rows() {
        println!("  ({}, {}, {:?})", row.row, row.t, row.l);
    }

    let part = Partition::build(&h, &scenario);
    println!("partition: p = {} independent sub-matrices", part.degree());
    for (i, sub) in part.independent.iter().enumerate() {
        println!("  H{i}: rows {:?} -> recovers {:?}", sub.rows, sub.faulty);
    }
    if let Some(rest) = &part.rest {
        println!(
            "  H_rest: rows {:?} -> recovers {:?}",
            rest.rows, rest.faulty
        );
    }

    // --- Calculation-sequence costs -----------------------------------------
    let report = analyze(&h, &scenario).expect("decodable");
    let cf = SdClosedForm {
        n: 4,
        r: 4,
        m: 1,
        s: 1,
        z: 1,
    };
    println!("\ncosts (mult_XORs per stripe):");
    println!(
        "  C1 (traditional, normal)      = {:3}   closed form {}",
        report.c1,
        cf.c1()
    );
    println!(
        "  C2 (traditional, matrix-first) = {:3}   closed form {}",
        report.c2,
        cf.c2()
    );
    println!(
        "  C3 (PPM, matrix-first rest)    = {:3}   closed form {}",
        report.c3,
        cf.c3()
    );
    println!(
        "  C4 (PPM, normal rest)          = {:3}   closed form {}",
        report.c4,
        cf.c4()
    );
    println!(
        "  PPM saves (C1-C4)/C1 = {:.2}% (paper: 17.14%)",
        100.0 * (report.c1 - report.c4) as f64 / report.c1 as f64
    );

    // --- Decode and verify ---------------------------------------------------
    let pristine = stripe.clone();
    stripe.erase(&scenario);
    let plan = decoder
        .plan(&h, &scenario, Strategy::PpmAuto)
        .expect("plan");
    println!(
        "\nPPM plan:  strategy {:?}, {} mult_XORs, parallelism {}",
        plan.strategy(),
        plan.mult_xors(),
        plan.parallelism()
    );
    decoder.decode(&plan, &mut stripe).expect("decode");
    assert_eq!(stripe, pristine);
    println!("decoded:   all 5 faulty sectors recovered bit-exactly");
}
