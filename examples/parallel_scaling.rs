//! How the thread budget `T` affects PPM decode speed (a miniature of the
//! paper's Figure 7).
//!
//! Decodes the same SD worst-case failure with the traditional method and
//! with PPM at T = 1, 2, 4, ... threads, printing the improvement ratio
//! over the traditional baseline.
//!
//! Run with: `cargo run --release --example parallel_scaling [stripe_mib]`

use ppm::stripe::random_data_stripe;
use ppm::{encode, Backend, Decoder, DecoderConfig, ErasureCode, SdCode, Strategy, Stripe};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn time_decode(
    decoder: &Decoder,
    h: &ppm::Matrix<u8>,
    scenario: &ppm::FailureScenario,
    strategy: Strategy,
    pristine: &Stripe,
    reps: usize,
) -> f64 {
    let plan = decoder.plan(h, scenario, strategy).expect("plan");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut broken = pristine.clone();
        broken.erase(scenario);
        let t = Instant::now();
        decoder.decode(&plan, &mut broken).expect("decode");
        let dt = t.elapsed().as_secs_f64();
        assert!(broken == *pristine);
        best = best.min(dt);
    }
    best
}

fn main() {
    let stripe_mib: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let (n, r, m, s) = (16, 16, 2, 2);
    let code = SdCode::<u8>::search(n, r, m, s, 5, 3).expect("search");
    println!("code: {}   stripe: {} MiB", code.name(), stripe_mib);

    let mut rng = StdRng::seed_from_u64(1);
    let setup = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    let mut stripe = random_data_stripe(&code, (stripe_mib << 20) / (n * r) / 8 * 8, &mut rng);
    encode(&code, &setup, &mut stripe).expect("encode");
    let h = code.parity_check_matrix();
    let scenario = code
        .decodable_worst_case(1, &mut rng, 200)
        .expect("scenario");

    let base = time_decode(
        &setup,
        &h,
        &scenario,
        Strategy::TraditionalNormal,
        &stripe,
        3,
    );
    println!(
        "traditional (C1), 1 thread: {:8.2} ms  ({:.0} MB/s)",
        base * 1e3,
        stripe.total_bytes() as f64 / base / 1e6
    );

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    for t in [1usize, 2, 4, 8] {
        if t > cores.max(4) {
            break;
        }
        let dec = Decoder::new(DecoderConfig {
            threads: t,
            backend: Backend::Auto,
        });
        let dt = time_decode(&dec, &h, &scenario, Strategy::PpmAuto, &stripe, 3);
        println!(
            "PPM, T = {t}: {:8.2} ms  improvement {:+.1}%",
            dt * 1e3,
            (base / dt - 1.0) * 100.0
        );
    }
}
