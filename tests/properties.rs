//! Property-based integration tests: decode correctness and PPM
//! invariants over randomized codes, scenarios and payloads.

use ppm::core::cost::analyze;
use ppm::stripe::random_data_stripe;
use ppm::{
    encode, parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, EvenOddCode,
    FailureScenario, HitchhikerXor, LrcCode, Partition, PmdsCode, ProductCode, RdpCode, RsCode,
    SdCode, StarCode, Strategy,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Strategy: small SD geometry + seed.
fn sd_params() -> impl ProptestStrategy<Value = (usize, usize, usize, usize, u64)> {
    (4usize..=8, 2usize..=6, 1usize..=2, 0usize..=2, any::<u64>())
        .prop_filter("s fits beside parity disks", |(n, _, m, s, _)| {
            m < n && *s <= n - m
        })
}

use proptest::strategy::Strategy as ProptestStrategy;

/// The shared partition contract, for any code and any scenario: the
/// independent groups are square and pairwise disjoint, every sector
/// they claim is faulty, the rest never overlaps a group, and
/// independent ∪ rest reproduces the scenario exactly.
fn check_partition_invariants<C: ErasureCode<u8>>(
    code: &C,
    scenario: &FailureScenario,
) -> Result<(), TestCaseError> {
    let h = code.parity_check_matrix();
    let part = Partition::build(&h, scenario);
    let mut seen = std::collections::HashSet::new();
    for sub in &part.independent {
        prop_assert_eq!(
            sub.rows.len(),
            sub.faulty.len(),
            "square groups ({})",
            code.name()
        );
        for &f in &sub.faulty {
            prop_assert!(seen.insert(f), "sector claimed twice ({})", code.name());
            prop_assert!(
                scenario.contains(f),
                "claimed sector not faulty ({})",
                code.name()
            );
        }
    }
    let mut all: Vec<usize> = seen.iter().copied().collect();
    if let Some(rest) = &part.rest {
        for &f in &rest.faulty {
            prop_assert!(
                scenario.contains(f),
                "rest sector not faulty ({})",
                code.name()
            );
            prop_assert!(
                !seen.contains(&f),
                "rest overlaps a group ({})",
                code.name()
            );
        }
        all.extend(rest.faulty.iter().copied());
    }
    all.sort_unstable();
    prop_assert_eq!(
        all,
        scenario.faulty().to_vec(),
        "coverage ({})",
        code.name()
    );
    Ok(())
}

/// Draws a random scenario sized within the code's fault tolerance and
/// runs the shared partition contract on it.
fn random_scenario_invariants<C: ErasureCode<u8>>(
    code: &C,
    seed: u64,
) -> Result<(), TestCaseError> {
    let layout = code.layout();
    let mut rng = StdRng::seed_from_u64(seed);
    let max = code.fault_tolerance().min(layout.n * layout.r - 1);
    let count = 1 + (seed as usize) % max;
    let scenario = FailureScenario::random(layout, count, &mut rng);
    check_partition_invariants(code, &scenario)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any decodable worst case of any constructible SD instance
    /// roundtrips under PPM and the traditional method, with identical
    /// recovered bytes.
    #[test]
    fn sd_decode_roundtrips((n, r, m, s, seed) in sd_params()) {
        let Ok(code) = SdCode::<u8>::with_generator_coeffs(n, r, m, s) else {
            return Ok(()); // generator coefficients not encodable; skip
        };
        let h = code.parity_check_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let z_max = s.min(r);
        let z = if s == 0 { 0 } else { 1 + (seed as usize) % z_max };
        let scenario = if s == 0 {
            FailureScenario::sd_worst_case(code.layout(), m, 0, 0, &mut rng)
        } else {
            match code.decodable_worst_case(z, &mut rng, 50) {
                Some(sc) => sc,
                None => return Ok(()),
            }
        };
        if h.select_columns(scenario.faulty()).rank() < scenario.len() {
            return Ok(());
        }

        let decoder = Decoder::new(DecoderConfig { threads: 2, backend: Backend::Scalar });
        let mut stripe = random_data_stripe(&code, 32, &mut rng);
        encode(&code, &decoder, &mut stripe).unwrap();
        prop_assert!(parity_consistent(&h, &stripe, Backend::Scalar));
        let pristine = stripe.clone();

        for strategy in [Strategy::PpmAuto, Strategy::TraditionalNormal] {
            let mut broken = pristine.clone();
            broken.erase(&scenario);
            decoder.decode_scenario(&h, &scenario, strategy, &mut broken).unwrap();
            prop_assert_eq!(&broken, &pristine);
        }
    }

    /// Partition invariants: independent groups are disjoint, their union
    /// plus the rest equals the faulty set, and group sizes match their
    /// footprints.
    #[test]
    fn partition_invariants((n, r, m, s, seed) in sd_params()) {
        let Ok(code) = SdCode::<u8>::with_generator_coeffs(n, r, m, s) else {
            return Ok(());
        };
        let h = code.parity_check_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 1 + (seed as usize) % (m * r + s).min(h.rows());
        let scenario = FailureScenario::random(code.layout(), count, &mut rng);
        let part = Partition::build(&h, &scenario);

        let mut seen = std::collections::HashSet::new();
        for sub in &part.independent {
            prop_assert_eq!(sub.rows.len(), sub.faulty.len(), "square groups");
            for &f in &sub.faulty {
                prop_assert!(seen.insert(f), "faulty sector claimed twice");
                prop_assert!(scenario.contains(f));
            }
            // Group rows touch no faulty sector outside their own group.
            for &row in &sub.rows {
                for &f in scenario.faulty() {
                    if h.get(row, f) != 0 {
                        prop_assert!(sub.faulty.contains(&f));
                    }
                }
            }
        }
        let mut all: Vec<usize> = seen.into_iter().collect();
        if let Some(rest) = &part.rest {
            for &f in &rest.faulty {
                prop_assert!(scenario.contains(f));
                prop_assert!(!all.contains(&f));
            }
            all.extend(rest.faulty.iter().copied());
        }
        all.sort_unstable();
        prop_assert_eq!(all, scenario.faulty().to_vec());
    }

    /// The same partition contract over EVERY family in the crate —
    /// symmetric, asymmetric, and the 2-D/coupled newcomers — plus the
    /// correlated burst and rack generators on the product code.
    #[test]
    fn partition_invariants_all_families(seed in any::<u64>()) {
        random_scenario_invariants(&SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap(), seed)?;
        random_scenario_invariants(&PmdsCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap(), seed)?;
        random_scenario_invariants(&LrcCode::<u8>::new(6, 2, 2, 3).unwrap(), seed)?;
        random_scenario_invariants(&RsCode::<u8>::new(5, 3, 4).unwrap(), seed)?;
        random_scenario_invariants(&EvenOddCode::<u8>::new(5).unwrap(), seed)?;
        random_scenario_invariants(&RdpCode::<u8>::new(5).unwrap(), seed)?;
        random_scenario_invariants(&StarCode::<u8>::new(5).unwrap(), seed)?;
        random_scenario_invariants(&ProductCode::<u8>::new(4, 2, 3, 2).unwrap(), seed)?;
        random_scenario_invariants(&HitchhikerXor::<u8>::new(5, 3).unwrap(), seed)?;

        let pc = ProductCode::<u8>::new(4, 2, 3, 2).unwrap();
        let burst =
            FailureScenario::try_row_burst(pc.layout(), (seed as usize) % 5, 0, 2).unwrap();
        check_partition_invariants(&pc, &burst)?;
        let rack = FailureScenario::try_disk_group(pc.layout(), (seed as usize) % 3, 3).unwrap();
        check_partition_invariants(&pc, &rack)?;
        let hh = HitchhikerXor::<u8>::new(5, 3).unwrap();
        let rack = FailureScenario::try_disk_group(hh.layout(), (seed as usize) % 4, 4).unwrap();
        check_partition_invariants(&hh, &rack)?;
    }

    /// Cost-model invariants: PpmAuto's plan is never more expensive than
    /// any concrete strategy, and decodability is strategy-independent.
    #[test]
    fn auto_is_minimal((n, r, m, s, seed) in sd_params()) {
        let Ok(code) = SdCode::<u8>::with_generator_coeffs(n, r, m, s) else {
            return Ok(());
        };
        let h = code.parity_check_matrix();
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 1 + (seed as usize) % (m * r + s);
        let scenario = FailureScenario::random(code.layout(), count, &mut rng);
        if h.select_columns(scenario.faulty()).rank() < scenario.len() {
            return Ok(()); // undecodable; every strategy must refuse
        }
        let report = analyze(&h, &scenario).unwrap();
        let decoder = Decoder::new(DecoderConfig { threads: 1, backend: Backend::Scalar });
        let auto = decoder.plan(&h, &scenario, Strategy::PpmAuto).unwrap();
        let min = report.c1.min(report.c2).min(report.c3).min(report.c4);
        prop_assert_eq!(auto.mult_xors(), min);
    }

    /// LRC: whatever decodable disk pattern arises, local-group repairs
    /// dominate the independent phase and decode restores the stripe.
    #[test]
    fn lrc_roundtrip(seed in any::<u64>(), k_groups in 2usize..=4, r in 1usize..=4) {
        let k = k_groups * 2;
        let code = LrcCode::<u8>::new(k, k_groups, 2, r).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(scenario) = code.decodable_disk_failures(k_groups.min(3), &mut rng, 200) else {
            return Ok(());
        };
        let decoder = Decoder::new(DecoderConfig { threads: 2, backend: Backend::Scalar });
        let h = code.parity_check_matrix();
        let mut stripe = random_data_stripe(&code, 16, &mut rng);
        encode(&code, &decoder, &mut stripe).unwrap();
        let pristine = stripe.clone();
        stripe.erase(&scenario);
        decoder.decode_scenario(&h, &scenario, Strategy::PpmAuto, &mut stripe).unwrap();
        prop_assert_eq!(stripe, pristine);
    }

    /// Incremental small writes are indistinguishable from full
    /// re-encodes, for any sequence of updates.
    #[test]
    fn updates_equal_reencode(
        seed in any::<u64>(),
        writes in proptest::collection::vec((0usize..64, any::<u8>()), 1..6),
    ) {
        use ppm::UpdatePlan;
        let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap();
        let decoder = Decoder::new(DecoderConfig { threads: 1, backend: Backend::Scalar });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut incremental = random_data_stripe(&code, 32, &mut rng);
        encode(&code, &decoder, &mut incremental).unwrap();
        let mut reencoded = incremental.clone();

        let plan = UpdatePlan::build(&code, Backend::Scalar).unwrap();
        let data = code.data_sectors();
        let h = code.parity_check_matrix();
        for (pick, fill) in writes {
            let sector = data[pick % data.len()];
            let new_data = vec![fill; incremental.sector_bytes()];
            plan.apply(&mut incremental, sector, &new_data).unwrap();

            reencoded.write_sector(sector, &new_data);
        }
        // One full re-encode at the end must land on the same stripe.
        encode(&code, &decoder, &mut reencoded).unwrap();
        prop_assert_eq!(&incremental, &reencoded);
        prop_assert!(parity_consistent(&h, &incremental, Backend::Scalar));
    }

    /// Degraded reads: for any faulty subset and any wanted subset of it,
    /// the restricted plan recovers exactly the wanted sectors.
    #[test]
    fn restricted_plans_recover_wanted(seed in any::<u64>(), pick in 0usize..5) {
        let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
        let h = code.parity_check_matrix();
        let scenario = FailureScenario::new(vec![2, 6, 10, 13, 14]);
        let decoder = Decoder::new(DecoderConfig { threads: 2, backend: Backend::Scalar });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stripe = random_data_stripe(&code, 32, &mut rng);
        encode(&code, &decoder, &mut stripe).unwrap();
        let pristine = stripe.clone();

        let wanted = [scenario.faulty()[pick % scenario.len()]];
        let plan = decoder
            .plan(&h, &scenario, Strategy::PpmNormalRest)
            .unwrap()
            .restrict_to(&wanted);
        stripe.erase(&scenario);
        decoder.decode(&plan, &mut stripe).unwrap();
        prop_assert_eq!(stripe.sector(wanted[0]), pristine.sector(wanted[0]));
    }

    /// Corrupting any single byte of an encoded stripe breaks parity
    /// consistency (the check matrix has no zero column).
    #[test]
    fn corruption_always_detected(sector in 0usize..16, byte in 0usize..32, bit in 0u8..8) {
        let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
        let decoder = Decoder::new(DecoderConfig { threads: 1, backend: Backend::Scalar });
        let mut rng = StdRng::seed_from_u64(9);
        let mut stripe = random_data_stripe(&code, 32, &mut rng);
        encode(&code, &decoder, &mut stripe).unwrap();
        let h = code.parity_check_matrix();
        stripe.sector_mut(sector)[byte] ^= 1 << bit;
        prop_assert!(!parity_consistent(&h, &stripe, Backend::Scalar));
    }
}
