//! Integration tests for the repair-session layer: canonical cache-key
//! properties, warm-vs-cold bit-identity across the decoder
//! configuration matrix, LRU eviction, and stats plumbing through
//! [`RepairService`].

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, Backend, Decoder, DecoderConfig, FailureScenario, PlanKey, RepairService, SdCode,
    Strategy,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// A deterministic re-presentation of the same faulty *set*: reversed,
/// rotated, and sometimes with a duplicated element.
fn permuted(faulty: &[usize], seed: u64) -> Vec<usize> {
    let mut v = faulty.to_vec();
    if seed & 1 == 1 {
        v.reverse();
    }
    let rot = (seed as usize / 2) % v.len().max(1);
    v.rotate_left(rot);
    if seed & 4 != 0 {
        let dup = v[0];
        v.push(dup);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same faulty set in any presentation order — permuted, even
    /// with duplicates — canonicalizes to the same cache key, so a
    /// scattered repair job can never defeat the cache by enumeration
    /// order.
    #[test]
    fn key_is_order_insensitive(
        (faulty, seed) in (pvec(0usize..64, 1..8), any::<u64>())
    ) {
        let a = FailureScenario::new(faulty.clone());
        let b = FailureScenario::new(permuted(&faulty, seed));
        let ka = PlanKey::new("sd#6x8", 8, &a, Strategy::PpmAuto);
        let kb = PlanKey::new("sd#6x8", 8, &b, Strategy::PpmAuto);
        prop_assert_eq!(ka, kb);
    }

    /// Keys are structural, not digests: two keys are equal exactly when
    /// their canonical faulty sets are equal, and changing any other
    /// component (code id, GF width, strategy) always splits the key.
    /// Distinct erasure patterns therefore *never* collide.
    #[test]
    fn distinct_patterns_never_collide(
        (fa, fb) in (pvec(0usize..64, 1..8), pvec(0usize..64, 1..8))
    ) {
        let a = FailureScenario::new(fa);
        let b = FailureScenario::new(fb);
        let ka = PlanKey::new("sd#6x8", 8, &a, Strategy::PpmAuto);
        let kb = PlanKey::new("sd#6x8", 8, &b, Strategy::PpmAuto);
        prop_assert_eq!(ka == kb, a.faulty() == b.faulty());

        // Any other key component splits otherwise-identical keys.
        let other_code = PlanKey::new("lrc#6x4", 8, &a, Strategy::PpmAuto);
        let other_width = PlanKey::new("sd#6x8", 16, &a, Strategy::PpmAuto);
        let other_strategy = PlanKey::new("sd#6x8", 8, &a, Strategy::TraditionalNormal);
        prop_assert_ne!(ka.clone(), other_code);
        prop_assert_ne!(ka.clone(), other_width);
        prop_assert_ne!(ka, other_strategy);
    }
}

/// A warm (cache-hit) decode is bit-identical to the cold decode that
/// built the plan, across the full executor matrix: serial and the
/// paper's T = 4, scalar and (where the host supports it) SIMD region
/// kernels. The cache counters prove the warm repeats performed zero
/// matrix inversions: one build (miss) serves every later repair.
#[test]
fn warm_hit_decode_is_bit_identical_to_cold() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let scenario = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let backends = match Backend::detect() {
        Backend::Scalar => vec![Backend::Scalar],
        simd => vec![Backend::Scalar, simd],
    };
    const REPEATS: usize = 5;

    for threads in [1usize, 4] {
        for &backend in &backends {
            let svc = RepairService::new(&code, DecoderConfig { threads, backend });
            let mut rng = StdRng::seed_from_u64(101);
            let mut stripe = random_data_stripe(svc.code(), 64, &mut rng);
            svc.encode(&mut stripe).unwrap();
            let pristine = stripe.clone();

            // Cold: the first repair pays the plan build (a cache miss).
            let mut cold = pristine.clone();
            cold.erase(&scenario);
            svc.repair(&mut cold, &scenario).unwrap();
            assert_eq!(
                cold, pristine,
                "cold repair restores (T={threads} {backend:?})"
            );

            // Warm: every repeat is a cache hit and bit-identical.
            for round in 0..REPEATS {
                let mut warm = pristine.clone();
                warm.erase(&scenario);
                let stats = svc.repair(&mut warm, &scenario).unwrap();
                assert_eq!(warm, cold, "round {round} T={threads} {backend:?}");
                assert!(stats.matches_prediction());
            }

            // Zero inversions while warm: only encode + the cold repair
            // ever built a plan; every warm decode hit the cache.
            let s = svc.cache_stats();
            assert_eq!(
                s.misses, 2,
                "encode + cold build only (T={threads} {backend:?})"
            );
            assert_eq!(s.hits, REPEATS as u64, "every warm repeat hits");
            assert_eq!(s.evictions, 0);
        }
    }
}

/// Under capacity pressure the session cache evicts the least recently
/// *used* plan — a hit refreshes recency, so the hot pattern survives
/// while the stale one is rebuilt.
#[test]
fn session_cache_evicts_least_recently_used() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let config = DecoderConfig {
        threads: 1,
        backend: Backend::Scalar,
    };
    let svc = RepairService::new(&code, config).with_cache_capacity(2);

    // Encode outside the session so the cache only ever sees repairs.
    let dec = Decoder::new(config);
    let mut rng = StdRng::seed_from_u64(9);
    let mut stripe = random_data_stripe(&code, 64, &mut rng);
    encode(&code, &dec, &mut stripe).unwrap();
    let pristine = stripe.clone();

    let a = FailureScenario::new(vec![2]);
    let b = FailureScenario::new(vec![6]);
    let c = FailureScenario::new(vec![10]);
    let run = |sc: &FailureScenario| {
        let mut broken = pristine.clone();
        broken.erase(sc);
        svc.repair(&mut broken, sc).unwrap();
        assert_eq!(broken, pristine);
    };

    run(&a); // miss          cache: {A}
    run(&b); // miss          cache: {A, B}
    run(&a); // hit (bumps A) cache: {A, B}
    run(&c); // miss, evicts B (least recently used)
    run(&a); // hit — A survived the eviction
    run(&b); // miss — B was evicted, rebuilt; evicts C

    let s = svc.cache_stats();
    assert_eq!((s.hits, s.misses, s.evictions), (2, 4, 2));
    assert_eq!(s.entries, 2);
    assert_eq!(s.capacity, 2);
}

/// Batch and chunked decodes through the session report complete
/// per-stripe stats (the executed == predicted ledger holds) with the
/// cache counters attached, and restore every stripe.
#[test]
fn batch_and_chunked_report_full_stats() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let scenario = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let svc = RepairService::new(
        &code,
        DecoderConfig {
            threads: 4,
            backend: Backend::Scalar,
        },
    );
    let mut rng = StdRng::seed_from_u64(23);

    let mut pristine = Vec::new();
    let mut broken = Vec::new();
    for _ in 0..4 {
        let mut s = random_data_stripe(svc.code(), 64, &mut rng);
        svc.encode(&mut s).unwrap();
        let mut b = s.clone();
        b.erase(&scenario);
        pristine.push(s);
        broken.push(b);
    }

    let all = svc.decode_batch(&mut broken, &scenario).unwrap();
    assert_eq!(broken, pristine, "batch restores every stripe in order");
    assert_eq!(all.len(), 4);
    for stats in &all {
        assert!(stats.matches_prediction(), "batched stats stay on ledger");
        assert!(stats.cache.is_some(), "cache counters attached");
    }

    let mut b = pristine[0].clone();
    b.erase(&scenario);
    let stats = svc.decode_chunked(&mut b, &scenario, 32).unwrap();
    assert_eq!(b, pristine[0]);
    assert!(stats.matches_prediction(), "chunked stats stay on ledger");
    let cache = stats.cache.expect("cache counters attached");
    assert!(cache.hit_rate() > 0.0);
    let json = stats.to_json();
    assert!(
        json.contains("\"cache\":{\"hits\":"),
        "JSON embeds counters"
    );
}
