//! End-to-end tests of the `ppm-cli` binary: encode a file across strip
//! files, destroy devices, repair with PPM, reassemble, compare bytes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppm-cli"))
}

fn run_ok(args: &[&str]) -> Output {
    let out = cli().args(args).output().expect("spawn ppm-cli");
    assert!(
        out.status.success(),
        "ppm-cli {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn run_err(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn ppm-cli");
    assert!(
        !out.status.success(),
        "ppm-cli {args:?} unexpectedly succeeded"
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppm-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_input(dir: &Path, len: usize, seed: u8) -> PathBuf {
    let path = dir.join("input.bin");
    let data: Vec<u8> = (0..len)
        .map(|i| {
            (i as u64)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(seed as u64) as u8
        })
        .collect();
    std::fs::write(&path, data).unwrap();
    path
}

fn roundtrip(tag: &str, spec: &str, kill_disks: &str, len: usize) {
    let dir = workdir(tag);
    let input = make_input(&dir, len, 7);
    let archive = dir.join("archive");
    let archive_s = archive.to_str().unwrap();
    let input_s = input.to_str().unwrap();

    run_ok(&[
        "encode",
        "--code",
        spec,
        "--sector-kib",
        "1",
        input_s,
        archive_s,
    ]);
    run_ok(&["verify", archive_s]);
    run_ok(&["corrupt", archive_s, "--disks", kill_disks]);

    // Data is unavailable until repaired.
    let err = run_err(&["decode", archive_s, dir.join("out.bin").to_str().unwrap()]);
    assert!(err.contains("unavailable"), "unexpected error: {err}");

    run_ok(&["repair", archive_s, "--threads", "2"]);
    run_ok(&["verify", archive_s]);
    let out = dir.join("out.bin");
    run_ok(&["decode", archive_s, out.to_str().unwrap()]);

    let original = std::fs::read(&input).unwrap();
    let recovered = std::fs::read(&out).unwrap();
    assert_eq!(original, recovered, "{tag}: file must survive the outage");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sd_roundtrip_two_disks_lost() {
    roundtrip("sd", "sd:6,4,2,1", "0,5", 300_000);
}

#[test]
fn lrc_roundtrip_spread_outage() {
    // (4,2,2)-LRC: lose one disk of group 0 and one global parity.
    roundtrip("lrc", "lrc:4,2,2,4", "1,7", 150_000);
}

#[test]
fn rs_roundtrip() {
    roundtrip("rs", "rs:4,2,4", "2,3", 100_000);
}

#[test]
fn evenodd_roundtrip() {
    roundtrip("evenodd", "evenodd:5", "0,6", 120_000);
}

#[test]
fn star_roundtrip_three_disks_lost() {
    roundtrip("star", "star:5", "0,3,7", 90_000);
}

#[test]
fn pmds_roundtrip() {
    roundtrip("pmds", "pmds:5,4,1,1", "2", 80_000);
}

#[test]
fn tiny_file_single_stripe() {
    roundtrip("tiny", "rdp:5", "1", 100);
}

#[test]
fn product_roundtrip_two_columns_lost() {
    roundtrip("pc", "pc:4,2,3,2", "1,4", 120_000);
}

#[test]
fn hitchhiker_roundtrip_m_disks_lost() {
    roundtrip("hh", "hh:5,3", "0,2,6", 120_000);
}

/// `--stats` on encode and repair emits the JSON telemetry summary, and
/// the executed mult_XOR ledger matches the planner's prediction.
#[test]
fn stats_flag_reports_matching_ledger() {
    let dir = workdir("stats");
    let input = make_input(&dir, 120_000, 5);
    let archive = dir.join("a");
    let archive_s = archive.to_str().unwrap();

    let out = run_ok(&[
        "encode",
        "--code",
        "sd:6,4,2,1",
        "--sector-kib",
        "1",
        "--stats",
        input.to_str().unwrap(),
        archive_s,
    ]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("\"matches_prediction\":true"), "{text}");
    assert!(text.contains("\"executed_mult_xors_total\":"), "{text}");

    run_ok(&["corrupt", archive_s, "--disks", "0,5"]);
    let out = run_ok(&["repair", archive_s, "--threads", "2", "--stats"]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("\"matches_prediction\":true"), "{text}");
    assert!(text.contains("\"sample\":{"), "{text}");
    assert!(
        text.contains("\"predicted_mult_xors_per_stripe\":"),
        "{text}"
    );

    run_ok(&["verify", archive_s]);
    let out = dir.join("out.bin");
    run_ok(&["decode", archive_s, out.to_str().unwrap()]);
    assert_eq!(
        std::fs::read(&input).unwrap(),
        std::fs::read(&out).unwrap(),
        "stats-instrumented repair must still restore the file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn info_reports_shape() {
    let dir = workdir("info");
    let input = make_input(&dir, 50_000, 1);
    let archive = dir.join("a");
    run_ok(&[
        "encode",
        "--code",
        "rs:4,2,4",
        "--sector-kib",
        "1",
        input.to_str().unwrap(),
        archive.to_str().unwrap(),
    ]);
    let out = run_ok(&["info", archive.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("RS(6,4)"), "{text}");
    assert!(text.contains("symmetric:    true"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unrepairable_outage_reported() {
    let dir = workdir("unrepairable");
    let input = make_input(&dir, 40_000, 3);
    let archive = dir.join("a");
    let archive_s = archive.to_str().unwrap();
    run_ok(&[
        "encode",
        "--code",
        "rs:4,2,4",
        "--sector-kib",
        "1",
        input.to_str().unwrap(),
        archive_s,
    ]);
    run_ok(&["corrupt", archive_s, "--disks", "0,1,2"]); // 3 > m = 2
    let err = run_err(&["repair", archive_s]);
    assert!(err.contains("unrepairable"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_specs_rejected() {
    let dir = workdir("badspec");
    let input = make_input(&dir, 1000, 4);
    for spec in [
        "nope:1,2",
        "sd:1",
        "rs:0,0,0",
        "evenodd:4",
        "pc:4,2",
        "hh:5,1",
    ] {
        let err = run_err(&[
            "encode",
            "--code",
            spec,
            input.to_str().unwrap(),
            dir.join("x").to_str().unwrap(),
        ]);
        assert!(err.contains("error"), "spec {spec}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_manifest_rejected() {
    let dir = workdir("badmanifest");
    // Missing manifest entirely.
    let err = run_err(&["info", dir.to_str().unwrap()]);
    assert!(err.contains("manifest"), "{err}");
    // Present but truncated.
    std::fs::write(dir.join("ppm-manifest.txt"), "code=rs:4,2,4\n").unwrap();
    let err = run_err(&["info", dir.to_str().unwrap()]);
    assert!(err.contains("missing"), "{err}");
    // Unparseable code spec inside the manifest.
    std::fs::write(
        dir.join("ppm-manifest.txt"),
        "code=bogus:1\nsector_bytes=1024\nstripes=1\nfile_len=10\n",
    )
    .unwrap();
    let err = run_err(&["info", dir.to_str().unwrap()]);
    assert!(err.contains("unknown code family"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_rejects_out_of_range_disk() {
    let dir = workdir("badcorrupt");
    let input = make_input(&dir, 10_000, 9);
    let archive = dir.join("a");
    run_ok(&[
        "encode",
        "--code",
        "rs:4,2,4",
        "--sector-kib",
        "1",
        input.to_str().unwrap(),
        archive.to_str().unwrap(),
    ]);
    let err = run_err(&["corrupt", archive.to_str().unwrap(), "--disks", "99"]);
    assert!(err.contains("out of range"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
