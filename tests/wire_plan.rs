//! Differential suite for the serialized wire plan: on every code
//! family of the evaluation (SD, PMDS, LRC, RS), across thread budgets
//! and GF backends, a plan that travels through its byte encoding —
//! serialize, deserialize, re-validate, recompile kernels — must repair
//! bit-identically to the in-process compiled tape. Both execution
//! shapes are checked: whole-plan execution on a machine holding the
//! stripe (`Executor::execute_wire`) and the cluster split
//! (`Executor::wire_partials` + `Executor::finish_rest` + install),
//! where only partial-sum blocks connect the two halves.
//!
//! The workload seed is read from `PPM_SEED` (default 2015) so CI can
//! run this under a seed matrix without recompiling.

use ppm::stripe::random_data_stripe;
use ppm::{
    Backend, DecoderConfig, ErasureCode, FailureScenario, HitchhikerXor, LrcCode, PmdsCode,
    ProductCode, RepairService, RsCode, SdCode, Strategy, WirePlan,
};
use rand::{rngs::StdRng, SeedableRng};

fn seed_from_env() -> u64 {
    std::env::var("PPM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

const SECTOR_BYTES: usize = 256;

/// The full configuration grid every scenario is checked under.
const GRID: &[(usize, Backend)] = &[
    (1, Backend::Scalar),
    (1, Backend::Auto),
    (4, Backend::Scalar),
    (4, Backend::Auto),
];

/// One `(code, scenario, strategy)` cell: the wire-transported plan
/// must reproduce the in-process repair bit-for-bit on every grid
/// point, through both execution shapes.
fn wire_differential<C: ErasureCode<u8>>(
    code: &C,
    scenario: &FailureScenario,
    strategy: Strategy,
    seed: u64,
) {
    for &(threads, backend) in GRID {
        let label = format!(
            "threads={threads} backend={backend:?} strategy={strategy} faulty={:?}",
            scenario.faulty()
        );
        let service =
            RepairService::new(code, DecoderConfig { threads, backend }).with_strategy(strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pristine = random_data_stripe(code, SECTOR_BYTES, &mut rng);
        service.encode(&mut pristine).expect("encode");

        // Reference leg: the in-process compiled tape.
        let mut reference = pristine.clone();
        reference.erase(scenario);
        service.repair(&mut reference, scenario).expect("repair");
        assert_eq!(reference, pristine, "in-process repair ({label})");

        // Wire leg: serialize → bytes → deserialize → compile → run.
        let (wire, _) = service
            .planner()
            .wire_plan_for(scenario)
            .expect("wire plan");
        let bytes = wire.encode();
        let decoded = WirePlan::decode(&bytes).expect("wire bytes decode");
        assert_eq!(decoded, wire, "byte round trip is lossless ({label})");
        let exec = decoded.compile::<u8>(backend).expect("wire plan compiles");

        let mut via_wire = pristine.clone();
        via_wire.erase(scenario);
        service
            .executor()
            .execute_wire(&exec, &mut via_wire)
            .expect("execute_wire");
        assert_eq!(via_wire, pristine, "wire execution ({label})");

        // Cluster-split leg: phase A + partial sums locally, phase B
        // from the shipped blocks alone, recovered sectors installed.
        let mut via_split = pristine.clone();
        via_split.erase(scenario);
        let partials = service
            .executor()
            .wire_partials(&exec, &mut via_split)
            .expect("wire_partials");
        assert_eq!(
            partials.rest_pending,
            exec.rest_splittable(),
            "partial routing follows splittability ({label})"
        );
        if partials.rest_pending {
            assert_eq!(
                partials.rest_blocks.len(),
                exec.rest_scratch_slots(),
                "one T block per scratch slot ({label})"
            );
            let recovered = service
                .executor()
                .finish_rest(&exec, &partials.rest_blocks, SECTOR_BYTES)
                .expect("finish_rest");
            for (sector, bytes) in recovered {
                via_split.write_sector(sector, &bytes);
            }
        }
        assert_eq!(via_split, pristine, "split execution ({label})");

        // The verify rows traveled too: the repaired stripe is clean.
        let report = service
            .executor()
            .verify_wire(&exec, &via_split)
            .expect("verify_wire");
        assert!(
            report.violated_rows.is_empty(),
            "wire verify clean ({label})"
        );
    }
}

/// A light scenario (single lost data sector) that always leaves
/// surplus parity-check rows, so the wire verify leg has work.
fn light_scenario<C: ErasureCode<u8>>(code: &C) -> FailureScenario {
    let d = code.data_sectors()[0];
    FailureScenario::new(vec![d])
}

#[test]
fn sd_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).expect("code");
    let mut rng = StdRng::seed_from_u64(seed);
    let worst = code
        .decodable_worst_case(1, &mut rng, 300)
        .expect("worst case");
    wire_differential(&code, &worst, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

#[test]
fn pmds_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = PmdsCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).expect("code");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let scattered = (0..100)
        .map(|_| code.scattered_scenario(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .expect("a decodable scattered scenario within budget");
    wire_differential(&code, &scattered, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

#[test]
fn lrc_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = LrcCode::<u8>::new(6, 2, 2, 4).expect("code");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = (0..100)
        .map(|_| code.spread_disk_failures(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .expect("a decodable spread outage within budget");
    wire_differential(&code, &spread, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

#[test]
fn rs_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = RsCode::<u8>::new(5, 3, 4).expect("code");
    let mut rng = StdRng::seed_from_u64(seed);
    let disks = code.random_disk_failures(3, &mut rng);
    wire_differential(&code, &disks, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

#[test]
fn product_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = ProductCode::<u8>::new(4, 2, 3, 2).expect("code");
    let layout = code.layout();
    // Whole column, correlated row burst, and rack loss all travel.
    let column = FailureScenario::whole_disks(layout, &[1]);
    wire_differential(&code, &column, Strategy::PpmAuto, seed);
    let burst = FailureScenario::try_row_burst(layout, 2, 1, 4).expect("burst");
    wire_differential(&code, &burst, Strategy::PpmAuto, seed);
    let rack = FailureScenario::try_disk_group(layout, 2, 3).expect("rack");
    wire_differential(&code, &rack, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

#[test]
fn hitchhiker_wire_plan_matches_in_process() {
    let seed = seed_from_env();
    let code = HitchhikerXor::<u8>::new(5, 3).expect("code");
    let layout = code.layout();
    let single = FailureScenario::whole_disks(layout, &[1]);
    wire_differential(&code, &single, Strategy::PpmAuto, seed);
    let triple = FailureScenario::whole_disks(layout, &[0, 2, 5]);
    wire_differential(&code, &triple, Strategy::PpmAuto, seed);
    wire_differential(&code, &light_scenario(&code), Strategy::PpmAuto, seed);
}

/// Every strategy travels: the paper's running example under each
/// explicit calculation sequence, including the matrix-first rest
/// (whose `H_rest` reads sectors directly and therefore must *not*
/// split — `wire_partials` finishes it locally instead).
#[test]
fn every_strategy_round_trips_on_the_paper_example() {
    let seed = seed_from_env();
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).expect("paper code");
    let scenario = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    for strategy in [
        Strategy::PpmAuto,
        Strategy::PpmNormalRest,
        Strategy::PpmMatrixFirstRest,
        Strategy::TraditionalNormal,
        Strategy::TraditionalMatrixFirst,
    ] {
        wire_differential(&code, &scenario, strategy, seed);
    }
}
