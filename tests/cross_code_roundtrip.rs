//! Cross-crate integration: every code family × word width × strategy ×
//! thread count must encode and decode bit-exactly.

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, EvenOddCode,
    FailureScenario, GfWord, HitchhikerXor, LrcCode, PmdsCode, ProductCode, RdpCode, RsCode,
    SdCode, Strategy,
};
use rand::{rngs::StdRng, SeedableRng};

const STRATEGIES: [Strategy; 5] = [
    Strategy::TraditionalNormal,
    Strategy::TraditionalMatrixFirst,
    Strategy::PpmMatrixFirstRest,
    Strategy::PpmNormalRest,
    Strategy::PpmAuto,
];

fn roundtrip<W: GfWord, C: ErasureCode<W>>(
    code: &C,
    scenario: &FailureScenario,
    seed: u64,
    threads: usize,
) {
    let decoder = Decoder::new(DecoderConfig {
        threads,
        backend: Backend::Auto,
    });
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stripe = random_data_stripe(code, 64, &mut rng);
    encode(code, &decoder, &mut stripe).expect("encode");
    assert!(
        parity_consistent(&h, &stripe, Backend::Auto),
        "{}: encode left inconsistent parity",
        code.name()
    );
    let pristine = stripe.clone();
    for &strategy in &STRATEGIES {
        let mut broken = pristine.clone();
        broken.erase(scenario);
        decoder
            .decode_scenario(&h, scenario, strategy, &mut broken)
            .unwrap_or_else(|e| panic!("{} {strategy:?}: {e}", code.name()));
        assert_eq!(broken, pristine, "{} {strategy:?}", code.name());
    }
}

#[test]
fn sd_all_widths() {
    let mut rng = StdRng::seed_from_u64(100);
    let code8 = SdCode::<u8>::search(6, 6, 2, 2, 1, 3).unwrap();
    let sc = code8.decodable_worst_case(2, &mut rng, 100).unwrap();
    roundtrip(&code8, &sc, 1, 2);

    let code16 = SdCode::<u16>::search(6, 6, 2, 2, 1, 3).unwrap();
    let sc = code16.decodable_worst_case(1, &mut rng, 100).unwrap();
    roundtrip(&code16, &sc, 2, 2);

    let code32 = SdCode::<u32>::search(5, 4, 1, 2, 1, 2).unwrap();
    let sc = code32.decodable_worst_case(2, &mut rng, 100).unwrap();
    roundtrip(&code32, &sc, 3, 2);
}

#[test]
fn pmds_scattered_erasures() {
    let pmds = PmdsCode::<u8>::search(6, 4, 1, 1, 7, 3).unwrap();
    let h = pmds.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(8);
    // Find a decodable scattered pattern (m per row + s extra).
    let sc = (0..100)
        .map(|_| pmds.scattered_scenario(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .expect("decodable scattered pattern");
    roundtrip(&pmds, &sc, 4, 2);
}

#[test]
fn lrc_various_shapes() {
    let mut rng = StdRng::seed_from_u64(300);
    for (k, l, g, r) in [(4, 2, 2, 4), (6, 3, 2, 3), (8, 2, 1, 2), (12, 4, 3, 2)] {
        let code = LrcCode::<u8>::new(k, l, g, r).unwrap();
        let sc = code
            .decodable_disk_failures(l + g, &mut rng, 1000)
            .unwrap_or_else(|| panic!("no decodable pattern for ({k},{l},{g})"));
        roundtrip(&code, &sc, 5, 4);
    }
}

#[test]
fn lrc_gf16() {
    let mut rng = StdRng::seed_from_u64(301);
    let code = LrcCode::<u16>::new(6, 2, 2, 3).unwrap();
    let sc = code.decodable_disk_failures(4, &mut rng, 1000).unwrap();
    roundtrip(&code, &sc, 6, 2);
}

#[test]
fn rs_all_widths_and_failure_counts() {
    let mut rng = StdRng::seed_from_u64(400);
    let code = RsCode::<u8>::new(6, 3, 4).unwrap();
    for count in 1..=3 {
        let sc = code.random_disk_failures(count, &mut rng);
        roundtrip(&code, &sc, 7 + count as u64, 2);
    }
    let code16 = RsCode::<u16>::new(4, 2, 3).unwrap();
    let sc = code16.random_disk_failures(2, &mut rng);
    roundtrip(&code16, &sc, 20, 2);
    let code32 = RsCode::<u32>::new(4, 2, 2).unwrap();
    let sc = code32.random_disk_failures(2, &mut rng);
    roundtrip(&code32, &sc, 21, 2);
}

/// The XOR-only RAID-6 codes decode any double disk failure under every
/// strategy; their whole pipeline is coefficient-1 fast-path XOR.
#[test]
fn evenodd_and_rdp_double_failures() {
    let layoutless_pairs = [(0usize, 1usize), (2, 5), (4, 6)];
    let eo = EvenOddCode::<u8>::new(5).unwrap();
    for &(a, b) in &layoutless_pairs {
        let sc = FailureScenario::whole_disks(eo.layout(), &[a, b.min(eo.layout().n - 1)]);
        roundtrip(&eo, &sc, 60 + a as u64, 2);
    }
    let rdp = RdpCode::<u8>::new(5).unwrap();
    for &(a, b) in &layoutless_pairs {
        let sc = FailureScenario::whole_disks(rdp.layout(), &[a, b.min(rdp.layout().n - 1)]);
        roundtrip(&rdp, &sc, 70 + a as u64, 2);
    }
}

/// STAR decodes any triple disk failure.
#[test]
fn star_triple_failures() {
    let star = ppm::StarCode::<u8>::new(5).unwrap();
    for disks in [[0usize, 1, 2], [2, 5, 7], [0, 4, 6]] {
        let sc = FailureScenario::whole_disks(star.layout(), &disks);
        roundtrip(&star, &sc, 90 + disks[0] as u64, 2);
    }
}

/// A single failed data disk in EVENODD/RDP is repaired purely from row
/// parity: PPM finds one independent 1x1 sub-matrix per row (p = r).
#[test]
fn evenodd_single_disk_is_fully_parallel() {
    let eo = EvenOddCode::<u8>::new(7).unwrap();
    let h = eo.parity_check_matrix();
    let sc = FailureScenario::whole_disks(eo.layout(), &[2]);
    let decoder = Decoder::new(DecoderConfig {
        threads: 2,
        backend: Backend::Auto,
    });
    let plan = decoder.plan(&h, &sc, Strategy::PpmAuto).unwrap();
    assert_eq!(plan.parallelism(), eo.layout().r);
    roundtrip(&eo, &sc, 80, 4);
}

/// Partial failures (fewer than the worst case) must also decode — the
/// paper only benchmarks the worst case but the library must handle the
/// common case of a single bad sector.
#[test]
fn single_sector_failures() {
    let code = SdCode::<u8>::search(6, 6, 2, 2, 2, 3).unwrap();
    let h = code.parity_check_matrix();
    for sector in [0usize, 7, 17, 35] {
        let sc = FailureScenario::new(vec![sector]);
        if h.select_columns(sc.faulty()).rank() == 1 {
            roundtrip(&code, &sc, 30 + sector as u64, 1);
        }
    }
}

/// Decoding a parity sector (not data) works the same way.
#[test]
fn parity_sector_failures() {
    let code = SdCode::<u8>::search(6, 6, 2, 2, 2, 3).unwrap();
    let parity = code.parity_sectors();
    let sc = FailureScenario::new(vec![parity[0], parity[parity.len() - 1]]);
    roundtrip(&code, &sc, 50, 2);
}

/// Product codes across word widths and both failure axes: whole
/// columns (repaired row-wise), co-located row bursts (repaired
/// column-wise), and the mixed "cross".
#[test]
fn product_both_axes_and_widths() {
    let code = ProductCode::<u8>::new(4, 2, 3, 2).unwrap();
    let layout = code.layout();
    // Whole-column failures, up to the row code's tolerance.
    for disks in [vec![1usize], vec![0, 4], vec![2, 3]] {
        let sc = FailureScenario::whole_disks(layout, &disks);
        roundtrip(&code, &sc, 110 + disks[0] as u64, 2);
    }
    // Co-located bursts within one stripe-row.
    for (row, start, width) in [(0usize, 0usize, 3usize), (2, 1, 4), (4, 0, 2)] {
        let sc = FailureScenario::try_row_burst(layout, row, start, width).unwrap();
        roundtrip(&code, &sc, 120 + row as u64, 2);
    }
    // The cross: a full grid row plus a full data column.
    let cross = FailureScenario::try_row_burst(layout, 1, 0, layout.n)
        .unwrap()
        .union(&FailureScenario::new(
            (0..layout.r).map(|i| layout.sector(i, 2)).collect(),
        ));
    roundtrip(&code, &cross, 130, 4);

    let code16 = ProductCode::<u16>::new(5, 2, 3, 2).unwrap();
    let sc = FailureScenario::whole_disks(code16.layout(), &[1, 6]);
    roundtrip(&code16, &sc, 131, 2);
}

/// Correlated rack loss: a full disk-group failure on a product code
/// and on RS, generated through the scenario layer's group splitter.
#[test]
fn rack_loss_roundtrips() {
    let code = ProductCode::<u8>::new(4, 2, 3, 2).unwrap();
    // 6 disks in 3 groups of 2 — losing any rack stays within m1.
    for group in 0..3 {
        let sc = FailureScenario::try_disk_group(code.layout(), group, 3).unwrap();
        roundtrip(&code, &sc, 140 + group as u64, 2);
    }
    let rs = RsCode::<u8>::new(5, 3, 4).unwrap();
    // 8 disks in 4 racks of 2 ≤ m = 3.
    for group in 0..4 {
        let sc = FailureScenario::try_disk_group(rs.layout(), group, 4).unwrap();
        roundtrip(&rs, &sc, 150 + group as u64, 2);
    }
}

/// Hitchhiker-XOR: single-disk, coupled-pair, and full `m`-disk
/// failures all round-trip under every strategy.
#[test]
fn hitchhiker_failures() {
    let code = HitchhikerXor::<u8>::new(5, 3).unwrap();
    let layout = code.layout();
    for disks in [vec![1usize], vec![0, 3], vec![0, 1, 2], vec![2, 5, 7]] {
        let sc = FailureScenario::whole_disks(layout, &disks);
        roundtrip(&code, &sc, 160 + disks[0] as u64, 2);
    }
    // Mixed sub-stripe pattern: one row-0 cell, one row-1 cell on
    // different disks.
    let sc = FailureScenario::new(vec![layout.sector(0, 1), layout.sector(1, 4)]);
    roundtrip(&code, &sc, 170, 2);

    let code16 = HitchhikerXor::<u16>::new(6, 3).unwrap();
    let sc = FailureScenario::whole_disks(code16.layout(), &[0, 4, 8]);
    roundtrip(&code16, &sc, 171, 2);
}
