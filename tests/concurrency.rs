//! Threaded stress tests for the shared repair session: single-flight
//! plan builds under a cold-key stampede, entry retention under
//! disjoint-key races, warm-hit bit-identity against a serial baseline,
//! and multi-worker batch/stream round trips.
//!
//! The workload seed is read from `PPM_SEED` (default 2015) so CI can
//! run these under a seed matrix without recompiling.

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, Backend, Decoder, DecoderConfig, ErasureCode, FailureScenario, RepairService, SdCode,
    Strategy, Stripe,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Barrier;

fn seed_from_env() -> u64 {
    std::env::var("PPM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

/// The paper's SD^{2,1}_{6,4} instance with fixed coefficients, so every
/// seed in the CI matrix exercises the same code but different data and
/// failure scenarios.
fn test_code() -> SdCode<u8> {
    SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).expect("code")
}

fn encoded_stripes(code: &SdCode<u8>, count: usize, sector_bytes: usize, seed: u64) -> Vec<Stripe> {
    let decoder = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut stripe = random_data_stripe(code, sector_bytes, &mut rng);
            encode(code, &decoder, &mut stripe).expect("encode");
            stripe
        })
        .collect()
}

fn serial_config() -> DecoderConfig {
    DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    }
}

/// Eight threads released together on one cold key: exactly one plan
/// build may happen (the single-flight guarantee), every repair must be
/// bit-exact, and the counters must account for all eight lookups.
#[test]
fn concurrent_cold_repairs_build_one_plan() {
    const THREADS: usize = 8;
    let seed = seed_from_env();
    let code = test_code();
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = code
        .decodable_worst_case(1, &mut rng, 200)
        .expect("scenario");
    let pristine = encoded_stripes(&code, THREADS, 256, seed);

    let service = RepairService::new(&code, serial_config());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pristine
            .iter()
            .map(|p| {
                let mut broken = p.clone();
                let (service, barrier, scenario) = (&service, &barrier, &scenario);
                scope.spawn(move || {
                    broken.erase(scenario);
                    barrier.wait();
                    service.repair(&mut broken, scenario).expect("repair");
                    broken
                })
            })
            .collect();
        for (handle, p) in handles.into_iter().zip(&pristine) {
            assert_eq!(
                &handle.join().expect("worker"),
                p,
                "repair must be bit-exact"
            );
        }
    });

    let cs = service.cache_stats();
    assert_eq!(cs.misses, 1, "single-flight: one build for one cold key");
    assert_eq!(cs.hits, (THREADS - 1) as u64, "every other lookup hits");
    assert_eq!(cs.evictions, 0);
    assert!(
        cs.coalesced <= cs.hits,
        "coalesced waits are a subset of hits"
    );
}

/// Six threads racing six distinct keys (one whole-disk failure each):
/// no insert may be lost to another shard's writer — a warm second pass
/// must be all hits, with no rebuild and no eviction.
#[test]
fn concurrent_disjoint_keys_retain_every_entry() {
    let seed = seed_from_env();
    let code = test_code();
    let layout = code.layout();
    let scenarios: Vec<FailureScenario> = (0..layout.n)
        .map(|disk| {
            FailureScenario::new((0..layout.r).map(|row| layout.sector(row, disk)).collect())
        })
        .collect();
    let pristine = encoded_stripes(&code, layout.n, 192, seed.wrapping_add(1));
    let service = RepairService::new(&code, serial_config());

    let run_pass = || {
        let barrier = Barrier::new(layout.n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pristine
                .iter()
                .zip(&scenarios)
                .map(|(p, scenario)| {
                    let mut broken = p.clone();
                    let (service, barrier) = (&service, &barrier);
                    scope.spawn(move || {
                        broken.erase(scenario);
                        barrier.wait();
                        service.repair(&mut broken, scenario).expect("repair");
                        broken
                    })
                })
                .collect();
            for (handle, p) in handles.into_iter().zip(&pristine) {
                assert_eq!(&handle.join().expect("worker"), p);
            }
        });
    };

    run_pass();
    let cold = service.cache_stats();
    assert_eq!(cold.misses as usize, layout.n, "one build per distinct key");
    assert_eq!(cold.hits, 0);

    run_pass();
    let warm = service.cache_stats();
    assert_eq!(warm.misses, cold.misses, "no entry was lost and rebuilt");
    assert_eq!(warm.hits as usize, layout.n, "warm pass is all hits");
    assert_eq!(warm.evictions, 0);
}

/// Warm cache hits under concurrency return the same plan the cold build
/// produced: every concurrently-repaired stripe must be bit-identical to
/// the one a plain serial decoder recovers from the same damage.
#[test]
fn warm_concurrent_repairs_match_serial_decode() {
    const THREADS: usize = 6;
    let seed = seed_from_env();
    let code = test_code();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let scenario = code
        .decodable_worst_case(1, &mut rng, 200)
        .expect("scenario");
    let pristine = encoded_stripes(&code, THREADS, 320, seed.wrapping_add(2));

    // Serial baseline: a plain decoder, fresh plan, stripe by stripe.
    let decoder = Decoder::new(serial_config());
    let h = code.parity_check_matrix();
    let plan = decoder
        .plan(&h, &scenario, Strategy::PpmAuto)
        .expect("plan");
    let baseline: Vec<Stripe> = pristine
        .iter()
        .map(|p| {
            let mut broken = p.clone();
            broken.erase(&scenario);
            decoder.decode(&plan, &mut broken).expect("decode");
            broken
        })
        .collect();

    let service = RepairService::new(&code, serial_config());
    {
        // Warm the key so the threads below run the pure hit path.
        let mut warm = pristine[0].clone();
        warm.erase(&scenario);
        service.repair(&mut warm, &scenario).expect("warm repair");
    }
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pristine
            .iter()
            .map(|p| {
                let mut broken = p.clone();
                let (service, barrier, scenario) = (&service, &barrier, &scenario);
                scope.spawn(move || {
                    broken.erase(scenario);
                    barrier.wait();
                    service.repair(&mut broken, scenario).expect("repair");
                    broken
                })
            })
            .collect();
        for (handle, expected) in handles.into_iter().zip(&baseline) {
            assert_eq!(
                &handle.join().expect("worker"),
                expected,
                "warm concurrent repair must match the serial decode bit-for-bit"
            );
        }
    });
    let cs = service.cache_stats();
    assert_eq!(cs.misses, 1, "the warm-up built the only plan");
    assert_eq!(cs.hits, THREADS as u64);
}

/// Multi-worker `repair_batch` round trip at a batch size that forces the
/// inter-stripe split, plus the `repair_stream` ordering guarantee, both
/// under the CI seed matrix.
#[test]
fn multi_worker_batch_and_stream_roundtrip() {
    let seed = seed_from_env();
    let code = test_code();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
    let scenario = code
        .decodable_worst_case(1, &mut rng, 200)
        .expect("scenario");
    let pristine = encoded_stripes(&code, 64, 128, seed.wrapping_add(3));
    let service = RepairService::new(&code, serial_config());

    let mut broken = pristine.clone();
    for b in &mut broken {
        b.erase(&scenario);
    }
    let report = service
        .repair_batch(&mut broken, &scenario, 4)
        .expect("repair_batch");
    assert_eq!(broken, pristine, "batch repair must be bit-exact");
    assert!(
        report.inter_stripe,
        "64 stripes / 4 workers must split inter-stripe"
    );
    assert_eq!(report.workers, 4);
    assert_eq!(report.stripes(), 64);
    assert!(
        report.all_match_prediction(),
        "executed cost must match §III-B"
    );

    let mut streamed = pristine.clone();
    for s in &mut streamed {
        s.erase(&scenario);
    }
    let (repaired, stream_report) = service
        .repair_stream(streamed, &scenario, 3)
        .expect("repair_stream");
    assert_eq!(
        repaired, pristine,
        "streamed repair must preserve input order"
    );
    assert_eq!(stream_report.stripes(), 64);
}
