//! Runtime cross-check of the §III-B cost model: the telemetry returned
//! by [`Decoder::decode_with_stats`] must report *exactly* the number of
//! `mult_XORs` the planner predicted. The executed counters are bumped by
//! the region kernels themselves, so any drift between the plan compiler
//! and the data path — a skipped term, a double-applied coefficient, a
//! wrong sub-plan split — breaks the `executed == predicted` equality.

use ppm::core::cost::analyze;
use ppm::stripe::random_data_stripe;
use ppm::{
    encode, Backend, Decoder, DecoderConfig, ErasureCode, ExecStats, FailureScenario, GfWord,
    LrcCode, PmdsCode, SdCode, Strategy,
};
use rand::{rngs::StdRng, SeedableRng};

fn decoder(threads: usize) -> Decoder {
    Decoder::new(DecoderConfig {
        threads,
        backend: Backend::Scalar,
    })
}

/// Encodes a fresh stripe, erases `scenario`, decodes with stats, and
/// checks the executed/predicted ledger plus full recovery.
fn check<W: GfWord, C: ErasureCode<W>>(
    code: &C,
    scenario: &FailureScenario,
    threads: usize,
    strategy: Strategy,
    seed: u64,
) -> ExecStats {
    let dec = decoder(threads);
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stripe = random_data_stripe(code, 64 * W::BYTES, &mut rng);
    encode(code, &dec, &mut stripe).expect("encode");
    let pristine = stripe.clone();
    stripe.erase(scenario);

    let plan = dec.plan(&h, scenario, strategy).expect("plan");
    let stats = dec.decode_with_stats(&plan, &mut stripe).expect("decode");
    assert_eq!(
        stripe,
        pristine,
        "{}: instrumented decode must restore the stripe ({strategy:?}, T={threads})",
        code.name()
    );

    // The ledger: executed region ops == the plan's predicted cost.
    assert_eq!(
        stats.executed_mult_xors(),
        plan.mult_xors() as u64,
        "{}: executed != predicted ({strategy:?}, T={threads})",
        code.name()
    );
    assert!(stats.matches_prediction());
    assert_eq!(stats.predicted_mult_xors, plan.mult_xors());
    assert_eq!(stats.strategy, plan.strategy());
    assert_eq!(stats.threads, threads);
    assert_eq!(stats.parallelism, plan.parallelism());
    assert_eq!(stats.phase_a.len(), plan.parallelism());
    assert_eq!(stats.phase_b.is_some(), plan.has_phase_b());
    assert!(stats.executed_plain_xors() <= stats.executed_mult_xors());
    let u = stats.thread_utilization();
    assert!((0.0..=1.0).contains(&u), "utilization {u}");
    stats
}

/// SD worst-case grid (the paper's evaluation shape): every concrete
/// strategy and the auto strategy, serial and with the paper's T = 4.
#[test]
fn sd_worst_case_grid_executed_equals_predicted() {
    let mut rng = StdRng::seed_from_u64(41);
    for (n, r, m, s) in [(4usize, 4usize, 1usize, 1usize), (6, 8, 2, 2), (6, 6, 2, 1)] {
        let code = match SdCode::<u8>::with_generator_coeffs(n, r, m, s) {
            Ok(c) => c,
            Err(_) => SdCode::<u8>::search(n, r, m, s, 11, 2).unwrap(),
        };
        for z in 1..=s {
            let Some(sc) = code.decodable_worst_case(z, &mut rng, 200) else {
                continue;
            };
            let report = analyze(&code.parity_check_matrix(), &sc).unwrap();
            for threads in [1usize, 4] {
                for (strategy, predicted) in [
                    (Strategy::TraditionalNormal, report.c1),
                    (Strategy::TraditionalMatrixFirst, report.c2),
                    (Strategy::PpmMatrixFirstRest, report.c3),
                    (Strategy::PpmNormalRest, report.c4),
                    (Strategy::PpmAuto, report.best().1),
                ] {
                    let stats = check(&code, &sc, threads, strategy, 500 + z as u64);
                    assert_eq!(
                        stats.executed_mult_xors(),
                        predicted as u64,
                        "n={n} r={r} m={m} s={s} z={z} T={threads} {strategy:?}: \
                         executed != cost::analyze prediction"
                    );
                }
            }
        }
    }
}

/// The auto strategy's stats carry the full predicted `C₁..C₄` report,
/// and it matches an independent `cost::analyze` run.
#[test]
fn auto_stats_carry_cost_report() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let sc = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let report = analyze(&code.parity_check_matrix(), &sc).unwrap();
    assert_eq!(
        (report.c1, report.c2, report.c3, report.c4),
        (35, 31, 37, 29)
    );

    for threads in [1usize, 4] {
        let stats = check(&code, &sc, threads, Strategy::PpmAuto, 7);
        let carried = stats.predicted_costs.expect("auto plan carries C1..C4");
        assert_eq!(carried, report);
        // The paper's winner: C4 = 29 with p = 3.
        assert_eq!(stats.strategy, Strategy::PpmNormalRest);
        assert_eq!(stats.executed_mult_xors(), 29);
        assert_eq!(stats.parallelism, 3);
    }
}

/// Concrete (non-auto) plans don't price the other candidates.
#[test]
fn concrete_stats_have_no_cost_report() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let sc = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let stats = check(&code, &sc, 2, Strategy::PpmNormalRest, 8);
    assert!(stats.predicted_costs.is_none());
}

/// PMDS and LRC: the equality is code-family independent.
#[test]
fn pmds_and_lrc_executed_equals_predicted() {
    let pmds = PmdsCode::<u8>::search(5, 4, 1, 1, 99, 3).unwrap();
    let h = pmds.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(17);
    // A decodable PMDS-style scattered pattern (retry until full rank).
    let sc = std::iter::repeat_with(|| pmds.scattered_scenario(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .unwrap();
    for threads in [1usize, 4] {
        check(&pmds, &sc, threads, Strategy::PpmAuto, 23);
    }

    let lrc = LrcCode::<u8>::new(6, 2, 2, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(19);
    let sc = lrc.decodable_disk_failures(4, &mut rng, 500).unwrap();
    for threads in [1usize, 4] {
        check(&lrc, &sc, threads, Strategy::PpmAuto, 29);
    }
}

/// Wider GF words flow through the same counted kernels.
#[test]
fn gf16_executed_equals_predicted() {
    let code = SdCode::<u16>::with_generator_coeffs(5, 4, 1, 1).unwrap();
    let mut rng = StdRng::seed_from_u64(37);
    if let Some(sc) = code.decodable_worst_case(1, &mut rng, 50) {
        for threads in [1usize, 4] {
            check(&code, &sc, threads, Strategy::PpmAuto, 31);
        }
    }
}

/// Satellite regression: a plan pruned by [`DecodePlan::restrict_to`]
/// must not carry the *full* plan's `C₁..C₄` report (the restricted
/// work no longer matches those prices), and its executed ledger must
/// equal its own re-computed `mult_xors()` prediction.
#[test]
fn restricted_plan_invalidates_cost_report_and_stays_on_ledger() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let sc = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let h = code.parity_check_matrix();
    let dec = decoder(2);
    let mut rng = StdRng::seed_from_u64(11);
    let mut stripe = random_data_stripe(&code, 64, &mut rng);
    encode(&code, &dec, &mut stripe).expect("encode");
    let pristine = stripe.clone();

    let full = dec.plan(&h, &sc, Strategy::PpmAuto).expect("plan");
    assert!(full.predicted_costs().is_some(), "auto plan carries C1..C4");

    for wanted in [vec![2usize], vec![13], vec![6, 14], sc.faulty().to_vec()] {
        let plan = full.restrict_to(&wanted);
        // The carried report is explicitly invalidated, never stale.
        assert!(
            plan.predicted_costs().is_none(),
            "restricted plan must drop the full-plan cost report"
        );
        assert!(plan.mult_xors() <= full.mult_xors());

        let mut broken = pristine.clone();
        broken.erase(&sc);
        let stats = dec.decode_with_stats(&plan, &mut broken).expect("decode");
        for &w in &wanted {
            assert_eq!(broken.sector(w), pristine.sector(w), "wanted {w}");
        }
        // Executed work matches the *restricted* plan's own prediction.
        assert_eq!(
            stats.executed_mult_xors(),
            plan.mult_xors() as u64,
            "restricted to {wanted:?}: executed != predicted"
        );
        assert!(stats.matches_prediction());
        assert!(stats.predicted_costs.is_none());
    }
}

/// The JSON rendering of a real run contains the ledger keys.
#[test]
fn stats_json_from_real_run() {
    let code = SdCode::<u8>::new(4, 4, 1, 1, vec![1, 2]).unwrap();
    let sc = FailureScenario::new(vec![2, 6, 10, 13, 14]);
    let stats = check(&code, &sc, 4, Strategy::PpmAuto, 3);
    let json = stats.to_json();
    for key in [
        "\"strategy\":\"PpmNormalRest\"",
        "\"predicted_mult_xors\":29",
        "\"executed_mult_xors\":29",
        "\"matches_prediction\":true",
        "\"c1\":35",
        "\"phase_a\":[",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
