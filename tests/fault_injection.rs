//! End-to-end fault-injection tests for the verified-repair pipeline:
//! deterministic seeded corruption of surviving sectors across the
//! SD / PMDS / LRC grid, the {1, 4}-thread × {Scalar, Auto-SIMD}
//! decoder matrix, geometry and label faults, and the forced
//! SIMD-miscompute switch with its scalar fallback.
//!
//! Every fault is drawn from [`FaultInjector`] with a fixed seed, so a
//! failure here reproduces byte-for-byte. Corruption targets are
//! restricted to *locatable* survivors — sectors with a non-zero
//! coefficient in at least two surplus parity-check rows. A sector
//! covered by no surplus row (e.g. the local parity of an LRC row whose
//! sole check equation was spent on the decode) is
//! information-theoretically invisible to any single-stripe check, and
//! one covered by a single surplus row is detectable but not uniquely
//! locatable: promoting any other sector of that row consumes the lone
//! evidence row and the escalated verify has nothing left to object
//! with. DESIGN.md §8 derives both bounds.

use ppm::faults::kernel_fallbacks;
use ppm::stripe::random_data_stripe;
use ppm::{
    Backend, DecoderConfig, ErasureCode, FailureScenario, FaultInjector, HitchhikerXor, LrcCode,
    PmdsCode, ProductCode, RepairError, RepairService, SdCode,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Mutex, PoisonError};

/// Serializes the tests that flip the process-global SIMD-miscompute
/// switch (same discipline as `crates/gf/tests/fault_hooks.rs`).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// The decoder configurations the grid runs under.
fn config_matrix() -> Vec<DecoderConfig> {
    let mut m = vec![
        DecoderConfig {
            threads: 1,
            backend: Backend::Scalar,
        },
        DecoderConfig {
            threads: 4,
            backend: Backend::Scalar,
        },
    ];
    // Auto resolves to the fastest available SIMD kernel and degrades
    // to scalar elsewhere, so the matrix is portable.
    m.push(DecoderConfig {
        threads: 1,
        backend: Backend::Auto,
    });
    m.push(DecoderConfig {
        threads: 4,
        backend: Backend::Auto,
    });
    m
}

/// Injects one bit-flip into a random *locatable* survivor (non-zero
/// coefficient in at least two surplus rows of `plan`), runs
/// `repair_verified`, and checks the full contract: corruption
/// detected, located exactly, healed bit-exactly, and the first verify
/// pass matching the surplus-row cost model.
fn corrupt_locate_repair<C>(
    code: C,
    scenario: &FailureScenario,
    seed: u64,
    config: DecoderConfig,
) -> Result<(), TestCaseError>
where
    C: ErasureCode<u8>,
{
    let h = code.parity_check_matrix();
    let svc = RepairService::new(code, config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stripe = random_data_stripe(svc.code(), 64, &mut rng);
    svc.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    stripe.erase(scenario);

    let (plan, _) = svc.plan_for(scenario).unwrap();
    prop_assert!(plan.supports_verify());
    prop_assert!(plan.verify_rows() >= 2, "grid codes must have headroom");
    let surplus = plan.surplus_row_indices();
    let predicted_verify = plan.verify_mult_xors();
    let locatable: Vec<usize> = (0..h.cols())
        .filter(|s| !scenario.faulty().contains(s))
        .filter(|&s| surplus.iter().filter(|&&r| h.get(r, s) != 0).count() >= 2)
        .collect();
    drop(plan);
    prop_assert!(!locatable.is_empty());

    let mut inj = FaultInjector::new(seed);
    let target = locatable[(seed as usize) % locatable.len()];
    let flip = inj.corrupt_sector(&mut stripe, target);
    prop_assert_eq!(flip.sector, target);

    let stats = svc.repair_verified(&mut stripe, scenario).unwrap();
    prop_assert_eq!(&stripe, &pristine, "bit-exact after escalation");
    let v = stats.verify.expect("verified repair attaches VerifyStats");
    prop_assert!(!v.violated_rows.is_empty(), "corruption must be detected");
    prop_assert_eq!(&v.located, &vec![target], "located exactly");
    prop_assert!(v.escalations >= 1);
    prop_assert_eq!(v.rows_available, surplus.len());
    prop_assert_eq!(v.predicted_mult_xors, predicted_verify);
    prop_assert!(
        v.matches_prediction(),
        "first verify pass must match the surplus-row cost model"
    );
    prop_assert!(v.extra.mult_xors > 0, "escalation work lands on the ledger");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SD: one corrupt survivor is detected, located and healed under
    /// every thread/backend combination.
    #[test]
    fn sd_corruption_round_trips(seed in any::<u64>()) {
        let scenario = FailureScenario::new(vec![2, 9]);
        for config in config_matrix() {
            let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap();
            corrupt_locate_repair(code, &scenario, seed, config)?;
        }
    }

    /// PMDS: same contract as SD.
    #[test]
    fn pmds_corruption_round_trips(seed in any::<u64>()) {
        let scenario = FailureScenario::new(vec![2, 9]);
        for config in config_matrix() {
            let code = PmdsCode::<u8>::search(6, 4, 1, 1, 7, 3).unwrap();
            corrupt_locate_repair(code, &scenario, seed, config)?;
        }
    }

    /// LRC: same contract over an Azure-style (6,2,2) instance.
    #[test]
    fn lrc_corruption_round_trips(seed in any::<u64>()) {
        let scenario = FailureScenario::new(vec![2, 13]);
        for config in config_matrix() {
            let code = LrcCode::<u8>::new(6, 2, 2, 3).unwrap();
            corrupt_locate_repair(code, &scenario, seed, config)?;
        }
    }

    /// Product code: a correlated row burst is repaired column-wise and
    /// a corrupt survivor is still located and healed.
    #[test]
    fn product_corruption_round_trips(seed in any::<u64>()) {
        let probe = ProductCode::<u8>::new(4, 2, 3, 2).unwrap();
        let scenario = FailureScenario::try_row_burst(probe.layout(), 1, 0, 2).unwrap();
        for config in config_matrix() {
            let code = ProductCode::<u8>::new(4, 2, 3, 2).unwrap();
            corrupt_locate_repair(code, &scenario, seed, config)?;
        }
    }

    /// Hitchhiker-XOR: a lost disk touches both coupled sub-stripes;
    /// the same detect/locate/heal contract holds.
    #[test]
    fn hitchhiker_corruption_round_trips(seed in any::<u64>()) {
        let probe = HitchhikerXor::<u8>::new(5, 3).unwrap();
        let scenario = FailureScenario::whole_disks(probe.layout(), &[2]);
        for config in config_matrix() {
            let code = HitchhikerXor::<u8>::new(5, 3).unwrap();
            corrupt_locate_repair(code, &scenario, seed, config)?;
        }
    }

    /// Geometry faults — truncated buffers and stripes from a different
    /// volume — come back as structured [`RepairError`]s, never a panic
    /// and never silently accepted.
    #[test]
    fn geometry_faults_error_structurally(seed in any::<u64>()) {
        let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap();
        let svc = RepairService::new(code, DecoderConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stripe = random_data_stripe(svc.code(), 64, &mut rng);
        svc.encode(&mut stripe).unwrap();
        let scenario = FailureScenario::new(vec![2, 9]);

        let mut inj = FaultInjector::new(seed);
        for mut bad in [inj.truncated_stripe(&stripe), inj.misaligned_stripe(&stripe)] {
            match svc.repair_verified(&mut bad, &scenario) {
                Err(RepairError::GeometryMismatch { .. } | RepairError::BadChunkSize { .. }) => {}
                Err(RepairError::SectorOutOfRange { .. }) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "geometry fault must be a structural error, got {other:?}"
                    )));
                }
            }
        }
    }

    /// Label faults: a scenario that understates the true losses (the
    /// stripe lost a sector the label does not declare) is either healed
    /// — escalation promotes the undeclared loss — or rejected with a
    /// structured error. Never a panic, never silent wrong bytes.
    #[test]
    fn label_faults_never_yield_silent_wrong_bytes(seed in any::<u64>()) {
        let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap();
        let svc = RepairService::new(code, DecoderConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stripe = random_data_stripe(svc.code(), 64, &mut rng);
        svc.encode(&mut stripe).unwrap();
        let pristine = stripe.clone();

        let truth = FailureScenario::new(vec![2, 9]);
        let mut inj = FaultInjector::new(seed);
        let (understated, dropped) = inj.understate_scenario(&truth);
        stripe.erase(&truth);

        match svc.repair_verified(&mut stripe, &understated) {
            Ok(stats) => {
                prop_assert_eq!(&stripe, &pristine, "an accepted repair must be exact");
                let v = stats.verify.expect("attached");
                prop_assert_eq!(&v.located, &vec![dropped]);
            }
            Err(
                RepairError::VerificationFailed { .. } | RepairError::EscalationExhausted { .. },
            ) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "label fault must heal or fail structurally, got {other:?}"
                )));
            }
        }
    }
}

/// A forced SIMD miscompute (the injector's kernel-fault hook) is caught
/// by the checked region constructor, demoted to the scalar kernel, and
/// the verified repair still round-trips — with the fallback counter
/// recording the demotion.
#[test]
fn forced_simd_miscompute_falls_back_to_scalar_and_still_verifies() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            ppm::gf::force_simd_miscompute(false);
        }
    }
    let _reset = Reset;

    let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).unwrap();
    let svc = RepairService::new(
        code,
        DecoderConfig {
            threads: 2,
            backend: Backend::Auto,
        },
    );
    let mut rng = StdRng::seed_from_u64(99);
    let mut stripe = random_data_stripe(svc.code(), 64, &mut rng);
    svc.encode(&mut stripe).unwrap();
    let pristine = stripe.clone();
    let scenario = FailureScenario::new(vec![2, 9]);
    stripe.erase(&scenario);

    let before = kernel_fallbacks();
    let mut inj = FaultInjector::new(99);
    inj.force_simd_miscompute(true);
    let flip = inj.corrupt_survivor(&mut stripe, &scenario);

    let stats = svc.repair_verified(&mut stripe, &scenario).unwrap();
    inj.force_simd_miscompute(false);

    assert_eq!(stripe, pristine, "exact recovery on the scalar fallback");
    let v = stats.verify.expect("attached");
    assert_eq!(v.located, vec![flip.sector]);
    if Backend::Ssse3.is_available() {
        assert!(
            kernel_fallbacks() > before,
            "the poisoned SIMD kernel must be demoted at least once"
        );
    }
}
