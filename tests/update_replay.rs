//! Differential replay tests for the buffered update engine: the same
//! small-write trace is settled three ways — buffered through
//! [`UpdateEngine`] (tiny buffer, so evictions and the cost-model route
//! choice both exercise), immediately through
//! [`RepairService::apply_update`] one write at a time, and by patching
//! a flat byte image and fully re-encoding every stripe — and all three
//! must produce bit-identical volumes that pass the parity check.
//!
//! The grid crosses code families (SD, PMDS, LRC — the asymmetric codes
//! the update path exists for) with thread budgets and GF backends, and
//! a separate test checks that a concurrent `flush_all(4)` through the
//! shared session equals the serial drain bit for bit.
//!
//! The workload seed is read from `PPM_SEED` (default 2015) so CI can
//! run these under a seed matrix without recompiling.

use ppm::stripe::random_data_stripe;
use ppm::update::trace::{synthesize, SynthKind, TraceOp};
use ppm::update::AddressMap;
use ppm::{
    parity_consistent, Backend, DecoderConfig, EngineConfig, ErasureCode, EvictionPolicy,
    FlushMode, LrcCode, PmdsCode, RepairService, SdCode, Stripe, UpdateEngine,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const SECTOR_BYTES: usize = 64;
const STRIPES: usize = 8;

fn seed_from_env() -> u64 {
    std::env::var("PPM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

/// A mixed trace: Zipf-skewed sub-sector writes, uniform writes that
/// straddle sector (and stripe) boundaries, and a sequential sweep —
/// every op carrying seeded payload bytes shared by all replay paths.
fn workload(volume_bytes: u64, seed: u64) -> Vec<(TraceOp, Vec<u8>)> {
    let mut ops = synthesize(SynthKind::Zipf(1.0), 120, volume_bytes, 40, seed);
    ops.extend(synthesize(
        SynthKind::Uniform,
        60,
        volume_bytes,
        100,
        seed ^ 1,
    ));
    ops.extend(synthesize(
        SynthKind::Sequential,
        40,
        volume_bytes,
        SECTOR_BYTES as u64,
        seed ^ 2,
    ));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    ops.into_iter()
        .map(|op| {
            let mut payload = vec![0u8; op.len as usize];
            rng.fill(&mut payload[..]);
            (op, payload)
        })
        .collect()
}

/// A freshly encoded volume plus its flat data image.
fn fresh_volume<C: ErasureCode<u8>>(
    service: &RepairService<u8, C>,
    seed: u64,
) -> (Vec<Stripe>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut volume = Vec::with_capacity(STRIPES);
    let mut image = Vec::new();
    for _ in 0..STRIPES {
        let mut s = random_data_stripe(service.code(), SECTOR_BYTES, &mut rng);
        service.encode(&mut s).unwrap();
        for &sector in &service.code().data_sectors() {
            image.extend_from_slice(s.sector(sector));
        }
        volume.push(s);
    }
    (volume, image)
}

/// Path A: the buffered engine with a buffer far smaller than the
/// workload, so most flushes are capacity evictions.
fn replay_buffered<C: ErasureCode<u8>>(
    service: &RepairService<u8, C>,
    volume: Vec<Stripe>,
    ops: &[(TraceOp, Vec<u8>)],
    policy: EvictionPolicy,
    workers: usize,
) -> Vec<Stripe> {
    let config = EngineConfig {
        buffer_bytes: 256,
        policy,
        mode: FlushMode::Auto,
    };
    let mut engine = UpdateEngine::new(service, volume, config).unwrap();
    let mut reports = Vec::new();
    for (op, payload) in ops {
        reports.extend(engine.write(op.offset, payload).unwrap());
    }
    reports.extend(engine.flush_all(workers).unwrap());
    for r in &reports {
        assert!(
            r.exec.matches_prediction(),
            "flush of stripe {} executed {} mult_XORs, predicted {}",
            r.stripe,
            r.exec.executed_mult_xors(),
            r.exec.predicted_mult_xors
        );
    }
    assert_eq!(engine.pending_bytes(), 0, "flush_all left bytes pending");
    engine.into_volume()
}

/// Path B: no buffering — every write settles immediately through
/// `RepairService::apply_update`, sector by sector.
fn replay_immediate<C: ErasureCode<u8>>(
    service: &RepairService<u8, C>,
    volume: &mut [Stripe],
    ops: &[(TraceOp, Vec<u8>)],
) {
    let map = AddressMap::new(service.code(), SECTOR_BYTES, volume.len());
    for (op, payload) in ops {
        let mut consumed = 0usize;
        for (stripe, rel, len) in map.split_write(op.offset, op.len) {
            let piece = &payload[consumed..consumed + len as usize];
            consumed += len as usize;
            // Overlay the piece across the data sectors it touches and
            // apply each rewritten sector as one immediate update.
            let mut at = rel;
            let mut taken = 0usize;
            while at < rel + len {
                let slot = (at as usize) / SECTOR_BYTES;
                let sector = map.data_sectors()[slot];
                let sector_start = (slot * SECTOR_BYTES) as u64;
                let sector_end = sector_start + SECTOR_BYTES as u64;
                let end = (rel + len).min(sector_end);
                let mut buf = volume[stripe].sector(sector).to_vec();
                let lo = (at - sector_start) as usize;
                buf[lo..lo + (end - at) as usize]
                    .copy_from_slice(&piece[taken..taken + (end - at) as usize]);
                service
                    .apply_update(&mut volume[stripe], &[(sector, &buf)])
                    .unwrap();
                taken += (end - at) as usize;
                at = end;
            }
        }
    }
}

/// Path C: patch a flat byte image, then rebuild and re-encode every
/// stripe from scratch — the ground truth both update routes must hit.
fn replay_reencode<C: ErasureCode<u8>>(
    service: &RepairService<u8, C>,
    mut image: Vec<u8>,
    ops: &[(TraceOp, Vec<u8>)],
) -> Vec<Stripe> {
    for (op, payload) in ops {
        image[op.offset as usize..(op.offset + op.len) as usize].copy_from_slice(payload);
    }
    let code = service.code();
    let data_sectors = code.data_sectors();
    let per = data_sectors.len() * SECTOR_BYTES;
    let mut volume = Vec::with_capacity(STRIPES);
    for s in 0..STRIPES {
        let mut stripe = Stripe::zeroed(code.layout(), SECTOR_BYTES);
        for (i, &sector) in data_sectors.iter().enumerate() {
            let start = s * per + i * SECTOR_BYTES;
            stripe.write_sector(sector, &image[start..start + SECTOR_BYTES]);
        }
        service.encode(&mut stripe).unwrap();
        volume.push(stripe);
    }
    volume
}

fn assert_volumes_equal<C: ErasureCode<u8>>(code: &C, a: &[Stripe], b: &[Stripe], what: &str) {
    let h = code.parity_check_matrix();
    assert_eq!(a.len(), b.len());
    for (s, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{what}: stripe {s} diverged");
        assert!(
            parity_consistent(&h, x, Backend::Auto),
            "{what}: stripe {s} fails the parity check"
        );
    }
}

fn differential_grid<C: ErasureCode<u8> + Clone>(code: C, tag: &str) {
    let seed = seed_from_env();
    let policies = [
        EvictionPolicy::Lru,
        EvictionPolicy::MostModifiedBlock,
        EvictionPolicy::MostModifiedStripe,
    ];
    let mut policy_at = 0;
    for threads in [1usize, 4] {
        for backend in [Backend::Scalar, Backend::Auto] {
            let config = DecoderConfig { threads, backend };
            let service = RepairService::new(code.clone(), config);
            let (volume, image) = fresh_volume(&service, seed);
            let map = AddressMap::new(service.code(), SECTOR_BYTES, STRIPES);
            let ops = workload(map.volume_bytes(), seed);

            let policy = policies[policy_at % policies.len()];
            policy_at += 1;
            let buffered = replay_buffered(&service, volume.clone(), &ops, policy, 1);
            let mut immediate = volume.clone();
            replay_immediate(&service, &mut immediate, &ops);
            let reencoded = replay_reencode(&service, image, &ops);

            let what = format!("{tag} threads={threads} backend={backend:?} policy={policy:?}");
            assert_volumes_equal(&code, &buffered, &immediate, &format!("{what} buf-vs-imm"));
            assert_volumes_equal(
                &code,
                &buffered,
                &reencoded,
                &format!("{what} buf-vs-reenc"),
            );
        }
    }
}

#[test]
fn sd_buffered_immediate_and_reencode_agree() {
    differential_grid(SdCode::<u8>::search(6, 4, 2, 1, 2015, 3).unwrap(), "sd");
}

#[test]
fn pmds_buffered_immediate_and_reencode_agree() {
    differential_grid(PmdsCode::<u8>::search(6, 4, 2, 1, 2015, 3).unwrap(), "pmds");
}

#[test]
fn lrc_buffered_immediate_and_reencode_agree() {
    differential_grid(LrcCode::<u8>::new(6, 2, 2, 4).unwrap(), "lrc");
}

#[test]
fn concurrent_flush_equals_serial() {
    let seed = seed_from_env();
    let code = LrcCode::<u8>::new(6, 2, 2, 4).unwrap();
    let service = RepairService::new(code.clone(), DecoderConfig::default());
    let (volume, _) = fresh_volume(&service, seed);
    let map = AddressMap::new(service.code(), SECTOR_BYTES, STRIPES);
    let ops = workload(map.volume_bytes(), seed ^ 7);

    // Huge buffer: nothing evicts, every stripe settles in one final
    // drain — serially, then with 4 workers on the shared session.
    let drain = |workers: usize| {
        let config = EngineConfig {
            buffer_bytes: 1 << 30,
            policy: EvictionPolicy::Lru,
            mode: FlushMode::Auto,
        };
        let mut engine = UpdateEngine::new(&service, volume.clone(), config).unwrap();
        for (op, payload) in &ops {
            let forced = engine.write(op.offset, payload).unwrap();
            assert!(forced.is_empty(), "nothing should evict under a 1 GiB cap");
        }
        let reports = engine.flush_all(workers).unwrap();
        assert!(!reports.is_empty());
        engine.into_volume()
    };
    let serial = drain(1);
    let concurrent = drain(4);
    assert_volumes_equal(&code, &serial, &concurrent, "serial-vs-concurrent flush");
}

#[test]
fn naive_mode_matches_auto_and_costs_more() {
    let seed = seed_from_env();
    let code = LrcCode::<u8>::new(6, 2, 2, 4).unwrap();
    let service = RepairService::new(code.clone(), DecoderConfig::default());
    let (volume, _) = fresh_volume(&service, seed);
    let map = AddressMap::new(service.code(), SECTOR_BYTES, STRIPES);
    // Sparse sub-sector writes: the regime where delta patching wins.
    let ops = workload(map.volume_bytes(), seed ^ 21);

    let run = |mode: FlushMode| {
        let config = EngineConfig {
            buffer_bytes: 512,
            policy: EvictionPolicy::Lru,
            mode,
        };
        let mut engine = UpdateEngine::new(&service, volume.clone(), config).unwrap();
        let mut mult_xors = 0u64;
        for (op, payload) in &ops {
            for r in engine.write(op.offset, payload).unwrap() {
                mult_xors += r.exec.executed_mult_xors();
            }
        }
        for r in engine.flush_all(1).unwrap() {
            mult_xors += r.exec.executed_mult_xors();
        }
        (engine.into_volume(), mult_xors)
    };
    let (auto_vol, auto_cost) = run(FlushMode::Auto);
    let (naive_vol, naive_cost) = run(FlushMode::ReencodeOnly);
    assert_volumes_equal(&code, &auto_vol, &naive_vol, "auto-vs-naive");
    assert!(
        auto_cost < naive_cost,
        "buffered delta should beat naive re-encode: {auto_cost} vs {naive_cost} mult_XORs"
    );
}
