//! Differential suite for the compiled instruction tape: on every code
//! family of the evaluation (SD, PMDS, LRC, RS), across thread budgets
//! and GF backends, the tape executor must be bit-identical to the
//! per-term graph walker — for decode, for surplus-row verification,
//! and for the lowered delta-update path — with executed mult_XORs
//! equal to the planner's prediction on both sides.
//!
//! The workload seed is read from `PPM_SEED` (default 2015) so CI can
//! run this under a seed matrix without recompiling.

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, FailureScenario,
    HitchhikerXor, LrcCode, PmdsCode, ProductCode, RepairService, RsCode, SdCode, Strategy, Stripe,
    UpdatePlan,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn seed_from_env() -> u64 {
    std::env::var("PPM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015)
}

/// The full configuration grid every scenario is checked under.
const GRID: &[(usize, Backend)] = &[
    (1, Backend::Scalar),
    (1, Backend::Auto),
    (4, Backend::Scalar),
    (4, Backend::Auto),
];

/// Runs all three differential legs for one `(code, scenario)` pair on
/// every grid point. Returns whether the verify leg ran (it needs a
/// plan with surplus parity-check rows).
fn differential<C: ErasureCode<u8>>(code: &C, scenario: &FailureScenario, seed: u64) -> bool {
    let h = code.parity_check_matrix();
    assert_eq!(
        h.select_columns(scenario.faulty()).rank(),
        scenario.len(),
        "scenario must be decodable"
    );
    let mut verified = false;
    for &(threads, backend) in GRID {
        let label = format!("threads={threads} backend={backend:?} faulty={scenario:?}");
        let decoder = Decoder::new(DecoderConfig { threads, backend });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pristine = random_data_stripe(code, 256, &mut rng);
        encode(code, &decoder, &mut pristine).expect("encode");
        let plan = decoder.plan(&h, scenario, Strategy::PpmAuto).expect("plan");

        // Decode leg: same bytes, same ledger, both matching prediction.
        let mut via_graph = pristine.clone();
        via_graph.erase(scenario);
        let g = decoder
            .decode_with_stats(&plan, &mut via_graph)
            .expect("graph decode");
        let mut via_tape = pristine.clone();
        via_tape.erase(scenario);
        let t = decoder
            .decode_tape_with_stats(&plan, &mut via_tape)
            .expect("tape decode");
        assert_eq!(via_graph, pristine, "graph recovery ({label})");
        assert_eq!(via_tape, pristine, "tape recovery ({label})");
        assert!(t.tape && !g.tape, "stats label the path taken ({label})");
        assert!(g.matches_prediction(), "graph ledger ({label})");
        assert!(t.matches_prediction(), "tape ledger ({label})");
        assert_eq!(
            t.executed_mult_xors(),
            g.executed_mult_xors(),
            "identical op counts ({label})"
        );

        // Verify leg: clean on the recovered stripe, and the same rows
        // flagged once a surviving sector is corrupted.
        if plan.supports_verify() {
            verified = true;
            let rg = decoder.verify(&plan, &via_graph).expect("graph verify");
            let rt = decoder.verify_tape(&plan, &via_tape).expect("tape verify");
            assert!(rg.clean() && rt.clean(), "clean verify ({label})");
            assert_eq!(rg.rows_checked, rt.rows_checked, "rows checked ({label})");

            let victim = (0..plan.total_sectors())
                .find(|s| !scenario.faulty().contains(s))
                .expect("a surviving sector exists");
            let mut corrupt = via_tape.clone();
            corrupt.sector_mut(victim)[0] ^= 0x5A;
            let rg = decoder.verify(&plan, &corrupt).expect("graph verify");
            let rt = decoder.verify_tape(&plan, &corrupt).expect("tape verify");
            assert_eq!(
                rg.violated_rows, rt.violated_rows,
                "identical violation report ({label})"
            );
        }

        // Delta-update leg: the lowered patch lists must be
        // indistinguishable from writing the data and fully re-encoding,
        // with the patch count matching the update cost model.
        delta_update_leg(code, &pristine, threads, backend, seed, &label);
    }
    verified
}

/// One small write through [`UpdatePlan`]'s lowered patch lists and
/// through the session layer, checked against a full re-encode.
fn delta_update_leg<C: ErasureCode<u8>>(
    code: &C,
    pristine: &Stripe,
    threads: usize,
    backend: Backend,
    seed: u64,
    label: &str,
) {
    let decoder = Decoder::new(DecoderConfig { threads, backend });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    let data = code.data_sectors();
    let d = data[rng.random_range(0..data.len())];
    let mut new_data = vec![0u8; pristine.sector_bytes()];
    rng.fill(new_data.as_mut_slice());

    // Reference: write the sector and recompute every parity from scratch.
    let mut reference = pristine.clone();
    reference.write_sector(d, &new_data);
    encode(code, &decoder, &mut reference).expect("re-encode");

    let up = UpdatePlan::build(code, backend).expect("update plan");
    let mut patched = pristine.clone();
    up.apply(&mut patched, d, &new_data).expect("apply");
    assert_eq!(patched, reference, "patched == re-encoded ({label})");
    assert!(
        parity_consistent(&code.parity_check_matrix(), &patched, backend),
        "parity consistent ({label})"
    );

    // Session path: counted patches must match the update cost model.
    let service = RepairService::new(code, DecoderConfig { threads, backend });
    let mut via_service = pristine.clone();
    let st = service
        .apply_update(&mut via_service, &[(d, new_data.as_slice())])
        .expect("session update");
    assert_eq!(via_service, reference, "session patch ({label})");
    assert!(st.matches_prediction(), "update ledger ({label})");
    assert_eq!(
        st.predicted_mult_xors,
        up.update_mult_xors(d).expect("cost"),
        "prediction is the per-sector update cost ({label})"
    );
}

/// A light scenario (single lost data sector) that always leaves
/// surplus parity-check rows, so the verify leg runs.
fn light_scenario<C: ErasureCode<u8>>(code: &C) -> FailureScenario {
    let d = code.data_sectors()[0];
    FailureScenario::new(vec![d])
}

#[test]
fn sd_tape_matches_graph() {
    let seed = seed_from_env();
    let code = SdCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).expect("code");
    let mut rng = StdRng::seed_from_u64(seed);
    let worst = code
        .decodable_worst_case(1, &mut rng, 300)
        .expect("worst case");
    differential(&code, &worst, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}

#[test]
fn pmds_tape_matches_graph() {
    let seed = seed_from_env();
    let code = PmdsCode::<u8>::new(6, 4, 2, 1, vec![1, 2, 4]).expect("code");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    // Scattered patterns are only guaranteed decodable for searched
    // coefficients; draw until one is (the rank check in differential
    // re-asserts it).
    let scattered = (0..100)
        .map(|_| code.scattered_scenario(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .expect("a decodable scattered scenario within budget");
    differential(&code, &scattered, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}

#[test]
fn lrc_tape_matches_graph() {
    let seed = seed_from_env();
    let code = LrcCode::<u8>::new(6, 2, 2, 4).expect("code");
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = (0..100)
        .map(|_| code.spread_disk_failures(&mut rng))
        .find(|sc| h.select_columns(sc.faulty()).rank() == sc.len())
        .expect("a decodable spread outage within budget");
    differential(&code, &spread, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}

#[test]
fn rs_tape_matches_graph() {
    let seed = seed_from_env();
    let code = RsCode::<u8>::new(5, 3, 4).expect("code");
    let mut rng = StdRng::seed_from_u64(seed);
    let disks = code.random_disk_failures(3, &mut rng);
    differential(&code, &disks, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}

#[test]
fn product_tape_matches_graph() {
    let seed = seed_from_env();
    let code = ProductCode::<u8>::new(4, 2, 3, 2).expect("code");
    let layout = code.layout();
    // Whole column — decomposes into per-row groups.
    let column = FailureScenario::whole_disks(layout, &[1]);
    differential(&code, &column, seed);
    // Correlated row burst — decomposes into per-column groups.
    let burst = FailureScenario::try_row_burst(layout, 2, 0, 3).expect("burst");
    differential(&code, &burst, seed);
    // Rack loss (disk group 1 of 3 → disks 2,3).
    let rack = FailureScenario::try_disk_group(layout, 1, 3).expect("rack");
    differential(&code, &rack, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}

#[test]
fn hitchhiker_tape_matches_graph() {
    let seed = seed_from_env();
    let code = HitchhikerXor::<u8>::new(5, 3).expect("code");
    let layout = code.layout();
    let single = FailureScenario::whole_disks(layout, &[2]);
    differential(&code, &single, seed);
    let triple = FailureScenario::whole_disks(layout, &[0, 3, 6]);
    differential(&code, &triple, seed);
    assert!(differential(&code, &light_scenario(&code), seed));
}
