//! Chaos convergence: the cluster repair must produce byte-identical
//! archives under injected network faults, with bounded retry
//! amplification — the end-to-end contract of the chaos hardening
//! (`ChaosTransport` + v2 framing + supervised coordinator).
//!
//! The matrix here mirrors the `chaos_convergence` bench at CI-test
//! scale: three seeds × three fault profiles, each checked for
//! convergence, detection (corrupt frames must be *caught*, not
//! decoded), and amplification against a clean run of the same
//! configuration.

use ppm::{
    run_sim, ChaosConfig, ChaosRates, RepairMode, RetryPolicy, SdCode, SimConfig, SimReport,
};

/// Base seed for the per-test seed triplets, read from `PPM_SEED`
/// (default 1) so CI can sweep the whole suite across seeds.
fn seed_from_env() -> u64 {
    std::env::var("PPM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn seed_triplet() -> [u64; 3] {
    let base = seed_from_env();
    [base, base + 1, base + 2]
}

/// Frames moved under chaos may exceed the clean run by at most this
/// factor. Generous on purpose: measured amplification at these rates
/// is 1.1–2.5×, so only a real regression (unbounded retry, per-retry
/// plan re-shipping) trips it.
const AMPLIFICATION_BOUND: f64 = 4.0;

fn paper_code() -> SdCode<u8> {
    SdCode::new(4, 4, 1, 1, vec![1, 2]).expect("paper code")
}

fn base_cfg(seed: u64) -> SimConfig {
    SimConfig {
        workers: 3,
        stripes: 1_000_000,
        damaged: 6,
        scenarios: 3,
        sector_bytes: 512,
        seed,
        threads: 1,
        retry: RetryPolicy::aggressive(),
        ..SimConfig::default()
    }
}

fn run_chaotic(seed: u64, rates: ChaosRates) -> (SimReport, SimReport) {
    let code = paper_code();
    let clean = base_cfg(seed);
    let chaotic = SimConfig {
        chaos: Some(ChaosConfig {
            seed: seed ^ 0xC4A0_57AE,
            rates,
            delay_ms: 5,
        }),
        ..clean
    };
    let reference = run_sim(&code, &clean, RepairMode::Partial).expect("clean sim");
    let report = run_sim(&code, &chaotic, RepairMode::Partial).expect("chaotic sim");
    (reference, report)
}

fn assert_converged(label: &str, reference: &SimReport, report: &SimReport) {
    assert!(reference.identical, "{label}: clean run diverged");
    assert!(
        report.identical,
        "{label}: chaotic archive differs from the single-node reference"
    );
    assert_eq!(
        report.repaired, report.damaged,
        "{label}: repairs went missing"
    );
    assert!(
        report.chaos.injected.total() > 0,
        "{label}: the configured chaos never fired"
    );
    let amplification = report.traffic.frames as f64 / reference.traffic.frames as f64;
    assert!(
        amplification <= AMPLIFICATION_BOUND,
        "{label}: retry amplification {amplification:.2} exceeds {AMPLIFICATION_BOUND}"
    );
}

#[test]
fn drop_heavy_profile_converges_across_seeds() {
    for seed in seed_triplet() {
        let rates = ChaosRates {
            drop: 0.20,
            delay: 0.05,
            ..ChaosRates::default()
        };
        let (reference, report) = run_chaotic(seed, rates);
        assert_converged(&format!("drop-heavy/{seed}"), &reference, &report);
    }
}

#[test]
fn corrupt_heavy_profile_catches_every_flip() {
    for seed in seed_triplet() {
        let rates = ChaosRates {
            corrupt: 0.20,
            truncate: 0.05,
            ..ChaosRates::default()
        };
        let (reference, report) = run_chaotic(seed, rates);
        let label = format!("corrupt-heavy/{seed}");
        assert_converged(&label, &reference, &report);
        assert!(
            report.chaos.injected.corrupted > 0,
            "{label}: profile injected no corruption"
        );
        assert!(
            report.chaos.corrupt_frames_caught > 0,
            "{label}: corruption crossed the wire uncaught"
        );
        assert_eq!(report.violations, 0, "{label}: corruption reached sectors");
    }
}

#[test]
fn straggler_heavy_profile_survives_reorder_and_duplication() {
    for seed in seed_triplet() {
        let rates = ChaosRates {
            delay: 0.25,
            reorder: 0.08,
            duplicate: 0.05,
            ..ChaosRates::default()
        };
        let (reference, report) = run_chaotic(seed, rates);
        let label = format!("straggler-heavy/{seed}");
        assert_converged(&label, &reference, &report);
        // Chaos duplicates resend the same sealed frame, so the
        // sequence check must be what absorbs them.
        if report.chaos.injected.duplicated > 0 {
            assert!(
                report.chaos.dup_frames_dropped > 0,
                "{label}: duplicates delivered but never dropped"
            );
        }
    }
}

#[test]
fn hung_workers_fail_over_and_the_archive_survives() {
    let code = paper_code();
    let mut cfg = base_cfg(11);
    cfg.damaged = 4;
    cfg.chaos = Some(ChaosConfig {
        seed: 11,
        rates: ChaosRates {
            hang: 1.0,
            ..ChaosRates::default()
        },
        delay_ms: 5,
    });
    cfg.retry = RetryPolicy {
        deadline_ms: 40,
        max_attempts: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        hedge_after_ms: 0,
    };
    let report = run_sim(&code, &cfg, RepairMode::Partial).expect("hung sim");
    assert!(report.identical, "degraded repairs must still converge");
    assert_eq!(report.repaired, report.damaged);
    assert_eq!(report.chaos.workers_declared_dead as usize, cfg.workers);
    assert_eq!(report.chaos.degraded_local as usize, cfg.damaged);
}

#[test]
fn naive_mode_survives_chaos_too() {
    let code = paper_code();
    let cfg = SimConfig {
        chaos: Some(ChaosConfig {
            seed: 5,
            rates: ChaosRates {
                drop: 0.10,
                corrupt: 0.10,
                ..ChaosRates::default()
            },
            delay_ms: 5,
        }),
        ..base_cfg(5)
    };
    let report = run_sim(&code, &cfg, RepairMode::Naive).expect("naive chaotic sim");
    assert!(report.identical);
    assert_eq!(report.repaired, report.damaged);
}
