//! End-to-end walkthrough of the paper's worked example (Figures 2 and 3):
//! `SD^{1,1}_{4,4}(8|1,2)` with faulty sectors {b2, b6, b10, b13, b14}.
//! Every number asserted here is printed in the paper.

use ppm::core::cost::{analyze, SdClosedForm};
use ppm::stripe::random_data_stripe;
use ppm::{
    encode, parity_consistent, Backend, Decoder, DecoderConfig, ErasureCode, FailureScenario,
    LogTable, Partition, SdCode, Strategy,
};
use rand::{rngs::StdRng, SeedableRng};

fn code() -> SdCode<u8> {
    SdCode::new(4, 4, 1, 1, vec![1, 2]).expect("paper instance")
}

fn scenario() -> FailureScenario {
    FailureScenario::new(vec![2, 6, 10, 13, 14])
}

/// Figure 2, Step 1: H is 5×16; rows 0–3 are the XOR row-parities, row 4
/// is 2^0 … 2^15.
#[test]
fn step1_parity_check_matrix() {
    let h = code().parity_check_matrix();
    assert_eq!((h.rows(), h.cols()), (5, 16));
    for i in 0..4 {
        assert_eq!(
            h.row_support(i),
            vec![4 * i, 4 * i + 1, 4 * i + 2, 4 * i + 3]
        );
        assert!(h.row(i).iter().all(|&v| v == 0 || v == 1));
    }
    let mut pow = 1u8;
    for l in 0..16 {
        assert_eq!(h.get(4, l), pow);
        pow = ppm::GfWord::gf_mul(pow, 2);
    }
}

/// Figure 2, Steps 2–3: F extracted from the faulty columns is invertible
/// and the F⁻¹·S product has the row weights visible in the figure
/// (3, 3, 3, 11, 11 — totaling C₂ = 31).
#[test]
fn step2_3_extraction_and_inverse() {
    let h = code().parity_check_matrix();
    let sc = scenario();
    let f = h.select_columns(sc.faulty());
    let s = h.select_columns(&sc.surviving(16));
    let f_inv = f.inverse().expect("decodable");
    let g = f_inv.mul(&s);
    let weights: Vec<usize> = (0..5).map(|r| g.row_nonzeros(r)).collect();
    assert_eq!(weights, vec![3, 3, 3, 11, 11]);
    assert_eq!(g.nonzeros(), 31);
    assert_eq!(f_inv.nonzeros() + s.nonzeros(), 35);
}

/// Figure 3's log table, partition (p = 3, H_rest = rows {3,4}) and the
/// thread assignment sizes.
#[test]
fn figure3_partition_structure() {
    let h = code().parity_check_matrix();
    let log = LogTable::build(&h, &scenario());
    let expected: Vec<(usize, Vec<usize>)> = vec![
        (1, vec![2]),
        (1, vec![6]),
        (1, vec![10]),
        (2, vec![13, 14]),
        (5, vec![2, 6, 10, 13, 14]),
    ];
    for (row, (t, l)) in log.rows().iter().zip(&expected) {
        assert_eq!(row.t, *t);
        assert_eq!(&row.l, l);
    }
    let part = Partition::build(&h, &scenario());
    assert_eq!(part.degree(), 3);
    assert_eq!(part.independent_faulty(), vec![2, 6, 10]);
    let rest = part.rest.expect("rest non-null: case 3.2");
    assert_eq!(rest.rows, vec![3, 4]);
    assert_eq!(rest.faulty, vec![13, 14]);
}

/// §II-B / §III-B cost numbers: C₁ = 35, C₂ = 31, C₃ = 37, C₄ = 29,
/// 17.14% reduction; closed forms agree.
#[test]
fn cost_numbers() {
    let h = code().parity_check_matrix();
    let rep = analyze(&h, &scenario()).unwrap();
    assert_eq!((rep.c1, rep.c2, rep.c3, rep.c4), (35, 31, 37, 29));
    assert_eq!(rep.parallelism, 3);
    let cf = SdClosedForm {
        n: 4,
        r: 4,
        m: 1,
        s: 1,
        z: 1,
    };
    assert_eq!((cf.c1(), cf.c2(), cf.c3(), cf.c4()), (35, 31, 37, 29));
    assert_eq!(rep.best().1, 29);
}

/// The full pipeline: encode, fail, PPM-decode with every strategy and
/// thread count, recover bit-exactly.
#[test]
fn full_roundtrip_matrix() {
    let code = code();
    let h = code.parity_check_matrix();
    let mut rng = StdRng::seed_from_u64(1234);
    for strategy in [
        Strategy::TraditionalNormal,
        Strategy::TraditionalMatrixFirst,
        Strategy::PpmMatrixFirstRest,
        Strategy::PpmNormalRest,
        Strategy::PpmAuto,
    ] {
        for threads in [1usize, 3, 4] {
            let decoder = Decoder::new(DecoderConfig {
                threads,
                backend: Backend::Auto,
            });
            let mut stripe = random_data_stripe(&code, 256, &mut rng);
            encode(&code, &decoder, &mut stripe).unwrap();
            assert!(parity_consistent(&h, &stripe, Backend::Auto));
            let pristine = stripe.clone();
            stripe.erase(&scenario());
            decoder
                .decode_scenario(&h, &scenario(), strategy, &mut stripe)
                .unwrap();
            assert_eq!(stripe, pristine, "{strategy:?} T={threads}");
        }
    }
}

/// Encoding is the decode special case where all parity is "faulty": the
/// recovered parity must satisfy every check equation.
#[test]
fn encode_is_decode_special_case() {
    let code = code();
    let h = code.parity_check_matrix();
    let decoder = Decoder::new(DecoderConfig {
        threads: 1,
        backend: Backend::Scalar,
    });
    let mut rng = StdRng::seed_from_u64(5);
    let mut stripe = random_data_stripe(&code, 128, &mut rng);

    // Encode by explicitly decoding the parity positions.
    let parity_scenario = FailureScenario::new(code.parity_sectors());
    decoder
        .decode_scenario(
            &h,
            &parity_scenario,
            Strategy::TraditionalNormal,
            &mut stripe,
        )
        .unwrap();
    assert!(parity_consistent(&h, &stripe, Backend::Scalar));

    // And it matches the encode() convenience function.
    let mut stripe2 = random_data_stripe(&code, 128, &mut StdRng::seed_from_u64(5));
    encode(&code, &decoder, &mut stripe2).unwrap();
    assert_eq!(stripe, stripe2);
}
