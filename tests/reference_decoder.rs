//! Differential test: the region-operation decoder must agree with a
//! word-level reference solver that uses nothing but `Matrix` arithmetic.
//!
//! A stripe with `B`-byte sectors over GF(2^w) is exactly `B / (w/8)`
//! independent copies of the word-level code: byte-column `t` of every
//! sector forms a codeword vector. The reference solver extracts each
//! word column, computes `BF = F⁻¹ · (S · BS)` with plain matrix–vector
//! products, and writes the words back. Any disagreement with the
//! region decoder exposes a bug in the table-driven kernels, the plan
//! compiler, or the parallel executor.

use ppm::stripe::random_data_stripe;
use ppm::{
    encode, Backend, Decoder, DecoderConfig, ErasureCode, FailureScenario, GfWord, LrcCode, Matrix,
    SdCode, Strategy, Stripe,
};
use rand::{rngs::StdRng, SeedableRng};

fn load_word<W: GfWord>(sector: &[u8], t: usize) -> W {
    let mut x = 0u64;
    for i in 0..W::BYTES {
        x |= (sector[t * W::BYTES + i] as u64) << (8 * i);
    }
    W::from_u64(x)
}

fn store_word<W: GfWord>(sector: &mut [u8], t: usize, v: W) {
    let x = v.to_u64();
    for i in 0..W::BYTES {
        sector[t * W::BYTES + i] = (x >> (8 * i)) as u8;
    }
}

/// Recovers the faulty sectors of `stripe` word by word with pure matrix
/// arithmetic.
fn reference_decode<W: GfWord>(h: &Matrix<W>, scenario: &FailureScenario, stripe: &mut Stripe) {
    let total = stripe.layout().sectors();
    let faulty = scenario.faulty();
    let surviving = scenario.surviving(total);
    let f_all = h.select_columns(faulty);
    let rows = f_all.select_independent_rows();
    assert_eq!(
        rows.len(),
        faulty.len(),
        "reference: scenario must be decodable"
    );
    let f_inv = f_all.select_rows(&rows).inverse().unwrap();
    let s = h.select_rows(&rows).select_columns(&surviving);

    let words = stripe.sector_bytes() / W::BYTES;
    for t in 0..words {
        let bs: Vec<W> = surviving
            .iter()
            .map(|&l| load_word(stripe.sector(l), t))
            .collect();
        let bf = f_inv.mul_vec(&s.mul_vec(&bs));
        for (&sector, &v) in faulty.iter().zip(&bf) {
            store_word(stripe.sector_mut(sector), t, v);
        }
    }
}

fn differential<W: GfWord, C: ErasureCode<W>>(code: &C, scenario: &FailureScenario, seed: u64) {
    let h = code.parity_check_matrix();
    let enc = Decoder::new(DecoderConfig {
        threads: 2,
        backend: Backend::Auto,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stripe = random_data_stripe(code, 40 * W::BYTES.max(2), &mut rng);
    encode(code, &enc, &mut stripe).unwrap();
    let pristine = stripe.clone();

    // Reference path.
    let mut by_reference = pristine.clone();
    by_reference.erase(scenario);
    reference_decode(&h, scenario, &mut by_reference);
    assert_eq!(
        by_reference,
        pristine,
        "{}: reference decoder wrong",
        code.name()
    );

    // Region path: every strategy under the full decoder configuration
    // matrix — serial and parallel executors, scalar and (where the host
    // supports it) SIMD region kernels must all agree with the word-level
    // reference.
    let backends = match Backend::detect() {
        Backend::Scalar => vec![Backend::Scalar],
        simd => vec![Backend::Scalar, simd],
    };
    for threads in [1usize, 2, 4] {
        for &backend in &backends {
            let decoder = Decoder::new(DecoderConfig { threads, backend });
            for strategy in [
                Strategy::TraditionalNormal,
                Strategy::TraditionalMatrixFirst,
                Strategy::PpmMatrixFirstRest,
                Strategy::PpmNormalRest,
                Strategy::PpmAuto,
            ] {
                let mut by_regions = pristine.clone();
                by_regions.erase(scenario);
                decoder
                    .decode_scenario(&h, scenario, strategy, &mut by_regions)
                    .unwrap();
                assert_eq!(
                    by_regions,
                    by_reference,
                    "{}: region decoder diverges from reference \
                     ({strategy:?}, T={threads}, {backend:?})",
                    code.name()
                );
            }
        }
    }
}

#[test]
fn sd_gf8_matches_reference() {
    let code = SdCode::<u8>::search(6, 6, 2, 2, 9, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let sc = code.decodable_worst_case(1, &mut rng, 100).unwrap();
    differential(&code, &sc, 10);
}

#[test]
fn sd_gf16_matches_reference() {
    let code = SdCode::<u16>::search(5, 4, 1, 2, 9, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let sc = code.decodable_worst_case(2, &mut rng, 100).unwrap();
    differential(&code, &sc, 11);
}

#[test]
fn sd_gf32_matches_reference() {
    let code = SdCode::<u32>::search(5, 4, 1, 1, 9, 2).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let sc = code.decodable_worst_case(1, &mut rng, 100).unwrap();
    differential(&code, &sc, 12);
}

#[test]
fn lrc_matches_reference() {
    let code = LrcCode::<u8>::new(6, 2, 2, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let sc = code.spread_disk_failures(&mut rng);
    differential(&code, &sc, 13);
}

#[test]
fn partial_failure_matches_reference() {
    let code = SdCode::<u8>::new(6, 4, 2, 2, vec![1, 2, 4, 8]).unwrap();
    let sc = FailureScenario::new(vec![0, 9, 21]);
    let h = code.parity_check_matrix();
    if h.select_columns(sc.faulty()).rank() == sc.len() {
        differential(&code, &sc, 14);
    }
}
