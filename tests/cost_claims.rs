//! The paper's aggregate cost-model observations (§III-B, Figure 4),
//! encoded as regression tests over the evaluation grid.

use ppm::core::cost::{analyze, CostReport};
use ppm::{ErasureCode, SdCode, Strategy};
use rand::{rngs::StdRng, SeedableRng};

/// The Figure-4 grid (subset): r = 16, z = 1, m,s ∈ {1..3}, n sampled.
fn grid_reports() -> Vec<(usize, usize, usize, CostReport)> {
    let r = 16;
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(77);
    for m in 1..=3usize {
        for s in 1..=3usize {
            for n in [4usize, 6, 9, 11, 16, 21] {
                if n <= m || s > n - m {
                    continue;
                }
                let Ok(code) = SdCode::<u8>::with_generator_coeffs(n, r, m, s) else {
                    continue;
                };
                let Some(sc) = code.decodable_worst_case(1, &mut rng, 200) else {
                    continue;
                };
                let rep = analyze(&code.parity_check_matrix(), &sc).unwrap();
                out.push((n, m, s, rep));
            }
        }
    }
    assert!(out.len() >= 30, "grid too sparse: {}", out.len());
    out
}

/// §III-B: "the values of C2 and C4 are smaller among C1..C4" — C4 < C1
/// and C2 < C3 on every worst case.
#[test]
fn c4_beats_c1_and_c2_beats_c3_everywhere() {
    for (n, m, s, rep) in grid_reports() {
        assert!(
            rep.c4 < rep.c1,
            "n={n} m={m} s={s}: C4={} !< C1={}",
            rep.c4,
            rep.c1
        );
        assert!(
            rep.c2 < rep.c3,
            "n={n} m={m} s={s}: C2={} !< C3={}",
            rep.c2,
            rep.c3
        );
    }
}

/// §III-B: "the possibility of C4 > C2 is only around 5%. Besides, the
/// value of n is often equal to 4 or 5 and no more than 9 when C4 > C2."
#[test]
fn c4_rarely_loses_to_c2_and_only_at_small_n() {
    let reports = grid_reports();
    let losses: Vec<(usize, usize, usize)> = reports
        .iter()
        .filter(|(_, _, _, rep)| rep.c4 > rep.c2)
        .map(|&(n, m, s, _)| (n, m, s))
        .collect();
    let fraction = losses.len() as f64 / reports.len() as f64;
    assert!(
        fraction < 0.25,
        "C4 > C2 in {:.0}% of cases: {losses:?}",
        fraction * 100.0
    );
    for (n, m, s) in losses {
        assert!(n <= 9, "C4 > C2 at n={n} (m={m}, s={s}); paper says n <= 9");
    }
}

/// Figure 4 aggregate: average C4/C1 in the mid-80s percent.
#[test]
fn c4_over_c1_average_matches_figure4() {
    let reports = grid_reports();
    let avg: f64 = reports
        .iter()
        .map(|(_, _, _, r)| r.c4 as f64 / r.c1 as f64)
        .sum::<f64>()
        / reports.len() as f64;
    // Paper: 85.78% over its grid; ours samples slightly differently.
    assert!((0.70..=0.95).contains(&avg), "avg C4/C1 = {avg:.4}");
}

/// Figure 4 shape: C4/C1 grows with n (for fixed m, s).
#[test]
fn c4_over_c1_grows_with_n() {
    let reports = grid_reports();
    for m in 1..=3usize {
        for s in 1..=3usize {
            let series: Vec<(usize, f64)> = reports
                .iter()
                .filter(|&&(_, mm, ss, _)| mm == m && ss == s)
                .map(|&(n, _, _, rep)| (n, rep.c4 as f64 / rep.c1 as f64))
                .collect();
            for w in series.windows(2) {
                assert!(
                    w[1].1 >= w[0].1 - 1e-9,
                    "m={m} s={s}: C4/C1 not increasing at n={}..{}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }
}

/// §IV: "for SD code, there is a feature that the degree of parallelism p
/// is equal to r − z".
#[test]
fn parallelism_equals_r_minus_z() {
    let mut rng = StdRng::seed_from_u64(5);
    let r = 8;
    for (m, s) in [(1usize, 1usize), (2, 2), (2, 3)] {
        let code = SdCode::<u8>::with_generator_coeffs(8, r, m, s).unwrap();
        for z in 1..=s {
            let Some(sc) = code.decodable_worst_case(z, &mut rng, 200) else {
                continue;
            };
            let rep = analyze(&code.parity_check_matrix(), &sc).unwrap();
            assert_eq!(rep.parallelism, r - z, "m={m} s={s} z={z}");
        }
    }
}

/// The auto strategy always selects the arg-min of the report.
#[test]
fn auto_matches_report_best() {
    let mut rng = StdRng::seed_from_u64(9);
    let code = SdCode::<u8>::with_generator_coeffs(11, 16, 2, 2).unwrap();
    let h = code.parity_check_matrix();
    let sc = code.decodable_worst_case(1, &mut rng, 200).unwrap();
    let rep = analyze(&h, &sc).unwrap();
    let (_, best_cost) = rep.best();
    let plan = ppm::DecodePlan::build(&h, &sc, Strategy::PpmAuto, ppm::Backend::Scalar).unwrap();
    assert_eq!(plan.mult_xors(), best_cost);
}
