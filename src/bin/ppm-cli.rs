//! `ppm-cli` — file-level erasure coding driven by the PPM library.
//!
//! Splits a file into stripes, encodes it with any code in the workspace
//! (over GF(2^8)), stores one strip per "device" file, and repairs lost
//! devices with the PPM decoder:
//!
//! ```text
//! ppm-cli encode  --code sd:6,8,2,2 [--sector-kib 64] [--stats] <input> <dir>
//! ppm-cli verify  <dir>                 # H·B = 0 for every stripe
//! ppm-cli corrupt <dir> --disks 1,3     # simulate device failures
//! ppm-cli repair  <dir> [--threads T] [--workers N] [--stats] [--cache] [--verify] [--inject SEED]
//! ppm-cli update  <dir> (--trace FILE | --synth zipf|seq|uniform) [--ops N] [--write-bytes B]
//!                 [--policy lru|mmb|mms] [--buffer BYTES] [--workers N] [--seed S] [--naive] [--stats]
//! ppm-cli decode  <dir> <output>        # reassemble the original file
//! ppm-cli info    <dir>
//! ppm-cli cluster sim [--workers N] [--stripes M] [--damaged D] [--code spec]
//!                 [--bytes B] [--seed S] [--threads T] [--mode partial|naive|both] [--stats]
//!                 [--chaos SEED] [--drop R] [--corrupt R] [--truncate R] [--duplicate R]
//!                 [--reorder R] [--delay R] [--hang R] [--delay-ms MS] [--frame-version 1|2]
//!                 [--deadline MS] [--retries N] [--hedge MS]
//! ```
//!
//! Code specs: `sd:n,r,m,s` · `pmds:n,r,m,s` · `lrc:k,l,g,r` · `rs:k,m,r` ·
//! `evenodd:p` · `rdp:p` · `star:p` · `pc:k1,m1,k2,m2` (row × column
//! product code over the sector grid) · `hh:k,m` (Hitchhiker-XOR).
//!
//! `--stats` instruments the decode data path and prints one JSON object
//! to stdout: aggregate executed `mult_XORs` (counted by the region
//! kernels) against the planner's predicted cost, bytes moved, wall
//! times, and a per-sub-plan sample — see `ppm_core::ExecStats`.
//!
//! `repair --cache` routes the stripe loop through a `RepairService`
//! session: the decode plan is cached by erasure signature and working
//! buffers are recycled through a scratch arena, so every stripe after
//! the first performs zero matrix factorizations. With `--stats`, the
//! JSON gains a `"cache"` object (hits/misses/evictions/hit_rate).
//!
//! `repair --workers N` repairs the whole archive through one shared
//! `RepairService` session driving `repair_batch`: the broken stripes
//! are read into memory and split across `N` worker threads (the
//! service picks inter-stripe vs intra-stripe parallelism adaptively —
//! see `DESIGN.md` §9), then written back. The summary line reports the
//! mode, throughput in stripes/s, and the session's plan-cache
//! (hits/misses/coalesced) and scratch-arena (reuses/fresh/contended)
//! counters.
//!
//! `repair --verify` checks every recovered stripe against the surplus
//! parity-check rows of `H` (the rows the decode did not consume) and,
//! on violation, runs erasure escalation: suspect surviving sectors are
//! promoted into the faulty set and the decode retried until the stripe
//! verifies clean or the code's fault-tolerance budget runs out.
//! `--inject SEED` (requires `--verify`) flips one random bit in one
//! surviving sector of every stripe before repairing it — a
//! deterministic end-to-end demonstration that silent corruption is
//! detected, located, and healed.
//!
//! `cluster sim` runs a simulated coordinator/worker repair over a
//! sharded archive (`ppm_cluster::run_sim`): stripe ids shard over `N`
//! worker threads by ownership, the coordinator ships each failure
//! scenario's serialized wire plan to the owning worker once, survivors
//! execute phase A locally, and only partial-sum blocks and recovered
//! sectors cross the in-process wire. Every repaired stripe is compared
//! bit-for-bit against a single-node `RepairService` repair; any
//! divergence is a hard error (nonzero exit). The summary line is
//! greppable (`cluster-sim ... identical=true ... ratio=...`), and
//! `--mode both` (the default) also runs the naive ship-everything
//! baseline so the line carries the measured bandwidth ratio. `--stats`
//! prints the full JSON report(s).
//!
//! `cluster sim --chaos SEED` injects seeded faults into every
//! coordinator↔worker link (`ppm_cluster::ChaosTransport`): `--drop`,
//! `--corrupt`, `--truncate`, `--duplicate`, `--reorder`, `--delay`,
//! and `--hang` set per-frame probabilities (summing to at most 1),
//! `--delay-ms` sizes the delay fault. Frames travel in the v2 envelope
//! (CRC32 + sequence number), so corruption and duplication are caught
//! at the frame layer, while the supervised coordinator rides out loss
//! and silence with deadlines (`--deadline`), bounded retries
//! (`--retries`), straggler hedging (`--hedge`), and worker failover —
//! the repaired archive must *still* come back bit-identical, or the
//! command exits nonzero. The summary line gains
//! `chaos_seed=... injected=... retries=... corrupt_caught=...` fields
//! for CI to grep. `--frame-version 1` keeps the legacy raw framing
//! (interop mode; refuses chaos, which would be undetectable).
//!
//! `update` replays a small-write trace against a healthy archive
//! through the buffered update engine (`ppm_update::UpdateEngine`):
//! writes coalesce in a bounded dirty buffer (`--buffer`, evicting by
//! `--policy`), and each flush settles by delta-parity patching or full
//! re-encode, whichever the §III-B cost model prices cheaper. The trace
//! is either a CSV/JSONL file (`offset,len[,timestamp]`) or a seeded
//! synthetic workload (`--synth zipf[:SKEW]|seq|uniform`, `--ops`,
//! `--write-bytes`, `--seed` — payload bytes are derived
//! deterministically from the seed and op index, so two replays of the
//! same trace produce bit-identical archives). `--naive` forces every
//! flush down the full re-encode route — the ground-truth baseline the
//! buffered path is compared against in CI. `--workers N` drains the
//! final flush with N threads through the one shared session.

use ppm::update::trace::{parse_trace, synthesize, SynthKind, TraceOp};
use ppm::{
    encode, parity_consistent, run_sim, Backend, ChaosConfig, ChaosRates, Decoder, DecoderConfig,
    EngineConfig, ErasureCode, EvenOddCode, EvictionPolicy, ExecMode, ExecStats, FailureScenario,
    FaultInjector, FlushMode, HitchhikerXor, LrcCode, PmdsCode, ProductCode, RdpCode, RepairMode,
    RepairService, RetryPolicy, RsCode, SdCode, SimConfig, SimReport, StarCode, Strategy, Stripe,
    StripeLayout, UpdateEngine,
};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// All supported code families, monomorphized to GF(2^8).
enum Code {
    Sd(SdCode<u8>),
    Pmds(PmdsCode<u8>),
    Lrc(LrcCode<u8>),
    Rs(RsCode<u8>),
    EvenOdd(EvenOddCode<u8>),
    Rdp(RdpCode<u8>),
    Star(StarCode<u8>),
    Product(ProductCode<u8>),
    Hitchhiker(HitchhikerXor<u8>),
}

impl Code {
    fn parse(spec: &str) -> Result<Code, String> {
        let (family, params) = spec
            .split_once(':')
            .ok_or("code spec needs family:params")?;
        let nums: Vec<usize> = params
            .split(',')
            .map(|x| {
                x.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad number {x:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let wrong = |want: usize| format!("{family} expects {want} parameters, got {}", nums.len());
        let code = match family {
            "sd" => {
                if nums.len() != 4 {
                    return Err(wrong(4));
                }
                Code::Sd(
                    SdCode::search(nums[0], nums[1], nums[2], nums[3], 2015, 3)
                        .map_err(|e| e.to_string())?,
                )
            }
            "pmds" => {
                if nums.len() != 4 {
                    return Err(wrong(4));
                }
                Code::Pmds(
                    PmdsCode::search(nums[0], nums[1], nums[2], nums[3], 2015, 3)
                        .map_err(|e| e.to_string())?,
                )
            }
            "lrc" => {
                if nums.len() != 4 {
                    return Err(wrong(4));
                }
                Code::Lrc(
                    LrcCode::new(nums[0], nums[1], nums[2], nums[3]).map_err(|e| e.to_string())?,
                )
            }
            "rs" => {
                if nums.len() != 3 {
                    return Err(wrong(3));
                }
                Code::Rs(RsCode::new(nums[0], nums[1], nums[2]).map_err(|e| e.to_string())?)
            }
            "evenodd" => {
                if nums.len() != 1 {
                    return Err(wrong(1));
                }
                Code::EvenOdd(EvenOddCode::new(nums[0]).map_err(|e| e.to_string())?)
            }
            "rdp" => {
                if nums.len() != 1 {
                    return Err(wrong(1));
                }
                Code::Rdp(RdpCode::new(nums[0]).map_err(|e| e.to_string())?)
            }
            "star" => {
                if nums.len() != 1 {
                    return Err(wrong(1));
                }
                Code::Star(StarCode::new(nums[0]).map_err(|e| e.to_string())?)
            }
            "pc" => {
                if nums.len() != 4 {
                    return Err(wrong(4));
                }
                Code::Product(
                    ProductCode::new(nums[0], nums[1], nums[2], nums[3])
                        .map_err(|e| e.to_string())?,
                )
            }
            "hh" => {
                if nums.len() != 2 {
                    return Err(wrong(2));
                }
                Code::Hitchhiker(HitchhikerXor::new(nums[0], nums[1]).map_err(|e| e.to_string())?)
            }
            other => return Err(format!("unknown code family {other:?}")),
        };
        Ok(code)
    }

    fn as_dyn(&self) -> &dyn ErasureCode<u8> {
        match self {
            Code::Sd(c) => c,
            Code::Pmds(c) => c,
            Code::Lrc(c) => c,
            Code::Rs(c) => c,
            Code::EvenOdd(c) => c,
            Code::Rdp(c) => c,
            Code::Star(c) => c,
            Code::Product(c) => c,
            Code::Hitchhiker(c) => c,
        }
    }
}

/// The on-disk archive: a manifest plus one file per device.
struct Archive {
    dir: PathBuf,
    spec: String,
    code: Code,
    sector_bytes: usize,
    stripes: usize,
    file_len: u64,
}

impl Archive {
    const MANIFEST: &'static str = "ppm-manifest.txt";

    fn strip_path(&self, disk: usize) -> PathBuf {
        self.dir.join(format!("strip_{disk:03}.bin"))
    }

    fn save_manifest(&self) -> std::io::Result<()> {
        let text = format!(
            "code={}\nsector_bytes={}\nstripes={}\nfile_len={}\n",
            self.spec, self.sector_bytes, self.stripes, self.file_len
        );
        fs::write(self.dir.join(Self::MANIFEST), text)
    }

    fn load(dir: &Path) -> Result<Archive, String> {
        let text = fs::read_to_string(dir.join(Self::MANIFEST))
            .map_err(|e| format!("cannot read manifest in {}: {e}", dir.display()))?;
        let mut spec = None;
        let mut sector_bytes = None;
        let mut stripes = None;
        let mut file_len = None;
        for line in text.lines() {
            match line.split_once('=') {
                Some(("code", v)) => spec = Some(v.to_string()),
                Some(("sector_bytes", v)) => sector_bytes = v.parse().ok(),
                Some(("stripes", v)) => stripes = v.parse().ok(),
                Some(("file_len", v)) => file_len = v.parse().ok(),
                _ => {}
            }
        }
        let spec = spec.ok_or("manifest missing code=")?;
        Ok(Archive {
            dir: dir.to_path_buf(),
            code: Code::parse(&spec)?,
            spec,
            sector_bytes: sector_bytes.ok_or("manifest missing sector_bytes=")?,
            stripes: stripes.ok_or("manifest missing stripes=")?,
            file_len: file_len.ok_or("manifest missing file_len=")?,
        })
    }

    fn layout(&self) -> StripeLayout {
        self.code.as_dyn().layout()
    }

    /// Bytes of user data per stripe.
    fn data_per_stripe(&self) -> usize {
        self.code.as_dyn().data_sectors().len() * self.sector_bytes
    }

    /// Reads stripe `s` from the strip files. Missing or short devices
    /// yield zeroed sectors and are reported in the returned scenario.
    fn read_stripe(&self, s: usize) -> (Stripe, FailureScenario) {
        let layout = self.layout();
        let mut stripe = Stripe::zeroed(layout, self.sector_bytes);
        let mut lost = Vec::new();
        for disk in 0..layout.n {
            let path = self.strip_path(disk);
            let mut ok = false;
            if let Ok(mut f) = fs::File::open(&path) {
                let mut buf = vec![0u8; self.sector_bytes * layout.r];
                use std::io::Seek;
                if f.seek(std::io::SeekFrom::Start(
                    (s * layout.r * self.sector_bytes) as u64,
                ))
                .is_ok()
                    && f.read_exact(&mut buf).is_ok()
                {
                    for row in 0..layout.r {
                        stripe.write_sector(
                            layout.sector(row, disk),
                            &buf[row * self.sector_bytes..(row + 1) * self.sector_bytes],
                        );
                    }
                    ok = true;
                }
            }
            if !ok {
                for row in 0..layout.r {
                    lost.push(layout.sector(row, disk));
                }
            }
        }
        (stripe, FailureScenario::new(lost))
    }

    /// Writes stripe `s` back to the strip files (creating them).
    fn write_stripe(&self, s: usize, stripe: &Stripe) -> std::io::Result<()> {
        let layout = self.layout();
        for disk in 0..layout.n {
            let path = self.strip_path(disk);
            // No truncate: stripes are written at their own offsets into
            // the shared per-device file.
            #[allow(clippy::suspicious_open_options)]
            let mut f = fs::OpenOptions::new()
                .create(true)
                .write(true)
                .open(&path)?;
            use std::io::Seek;
            f.seek(std::io::SeekFrom::Start(
                (s * layout.r * self.sector_bytes) as u64,
            ))?;
            for row in 0..layout.r {
                f.write_all(stripe.sector(layout.sector(row, disk)))?;
            }
        }
        Ok(())
    }
}

/// Aggregates [`ExecStats`] across the stripes of one run and renders a
/// single JSON summary: totals for the executed side of the §III-B
/// ledger, the shared per-stripe prediction, and the first stripe's full
/// `ExecStats` as a representative sample.
#[derive(Default)]
struct StatsAgg {
    stripes: usize,
    executed_mult_xors: u64,
    executed_plain_xors: u64,
    bytes_moved: u64,
    total_nanos: u128,
    utilization_sum: f64,
    mismatches: usize,
    sample: Option<String>,
    cache: Option<String>,
}

impl StatsAgg {
    fn add(&mut self, stats: &ExecStats) {
        self.stripes += 1;
        self.executed_mult_xors += stats.executed_mult_xors();
        self.executed_plain_xors += stats.executed_plain_xors();
        self.bytes_moved += stats.bytes_moved();
        self.total_nanos += stats.total_nanos;
        self.utilization_sum += stats.thread_utilization();
        if !stats.matches_prediction() {
            self.mismatches += 1;
        }
        if self.sample.is_none() {
            self.sample = Some(stats.to_json());
        }
        // Keep the latest snapshot: its cumulative counters cover the run.
        if let Some(c) = &stats.cache {
            self.cache = Some(c.to_json());
        }
    }

    fn to_json(&self, predicted_per_stripe: usize) -> String {
        let predicted_total = predicted_per_stripe as u64 * self.stripes as u64;
        format!(
            "{{\"stripes\":{},\"predicted_mult_xors_per_stripe\":{},\
             \"predicted_mult_xors_total\":{},\"executed_mult_xors_total\":{},\
             \"matches_prediction\":{},\"executed_plain_xors_total\":{},\
             \"bytes_moved_total\":{},\"total_nanos\":{},\
             \"mean_thread_utilization\":{:.4},\"cache\":{},\"sample\":{}}}",
            self.stripes,
            predicted_per_stripe,
            predicted_total,
            self.executed_mult_xors,
            self.mismatches == 0 && self.executed_mult_xors == predicted_total,
            self.executed_plain_xors,
            self.bytes_moved,
            self.total_nanos,
            self.utilization_sum / self.stripes.max(1) as f64,
            self.cache.as_deref().unwrap_or("null"),
            self.sample.as_deref().unwrap_or("null"),
        )
    }
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args);
    let spec = flags
        .get("code")
        .ok_or("encode requires --code <spec>")?
        .clone();
    let sector_kib: usize = flag_num(&flags, "sector-kib").unwrap_or(64);
    let [input, dir] = pos.as_slice() else {
        return Err("usage: encode --code <spec> <input> <dir>".into());
    };

    let code = Code::parse(&spec)?;
    let data = fs::read(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;

    let sector_bytes = sector_kib * 1024;
    let archive = Archive {
        dir: PathBuf::from(dir),
        spec,
        code,
        sector_bytes,
        stripes: 0,
        file_len: data.len() as u64,
    };
    let per_stripe = archive.data_per_stripe();
    let stripes = data.len().div_ceil(per_stripe).max(1);
    let archive = Archive { stripes, ..archive };
    let dyn_code = archive.code.as_dyn();

    let decoder = Decoder::new(DecoderConfig::default());
    let data_sectors = dyn_code.data_sectors();
    // Encoding is decoding with every parity sector "faulty" — with
    // --stats, build that plan once and run it instrumented per stripe.
    let want_stats = flags.contains_key("stats");
    let h = dyn_code.parity_check_matrix();
    let parity_scenario = FailureScenario::new(dyn_code.parity_sectors());
    let mut agg = StatsAgg::default();
    let stats_plan = if want_stats {
        Some(
            decoder
                .plan(&h, &parity_scenario, Strategy::PpmAuto)
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    for s in 0..stripes {
        let mut stripe = Stripe::zeroed(archive.layout(), sector_bytes);
        let base = s * per_stripe;
        for (i, &sector) in data_sectors.iter().enumerate() {
            let start = base + i * sector_bytes;
            if start >= data.len() {
                break;
            }
            let end = (start + sector_bytes).min(data.len());
            stripe.sector_mut(sector)[..end - start].copy_from_slice(&data[start..end]);
        }
        match &stats_plan {
            Some(plan) => {
                let st = decoder
                    .decode_with_stats(plan, &mut stripe)
                    .map_err(|e| e.to_string())?;
                agg.add(&st);
            }
            None => {
                encode(&dyn_code, &decoder, &mut stripe).map_err(|e| e.to_string())?;
            }
        }
        archive
            .write_stripe(s, &stripe)
            .map_err(|e| e.to_string())?;
    }
    archive.save_manifest().map_err(|e| e.to_string())?;
    if let Some(plan) = &stats_plan {
        println!("{}", agg.to_json(plan.mult_xors()));
    }
    println!(
        "encoded {} bytes into {} stripes across {} devices ({})",
        data.len(),
        stripes,
        archive.layout().n,
        dyn_code.name()
    );
    Ok(())
}

fn cmd_corrupt(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args);
    let [dir] = pos.as_slice() else {
        return Err("usage: corrupt <dir> --disks a,b,...".into());
    };
    let archive = Archive::load(Path::new(dir))?;
    let disks: Vec<usize> = flags
        .get("disks")
        .ok_or("corrupt requires --disks a,b,...")?
        .split(',')
        .map(|d| d.trim().parse().map_err(|e| format!("bad disk: {e}")))
        .collect::<Result<_, _>>()?;
    for &d in &disks {
        if d >= archive.layout().n {
            return Err(format!("disk {d} out of range (n={})", archive.layout().n));
        }
        fs::remove_file(archive.strip_path(d)).map_err(|e| e.to_string())?;
    }
    println!("removed devices {disks:?}");
    Ok(())
}

fn cmd_repair(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args);
    let [dir] = pos.as_slice() else {
        return Err(
            "usage: repair <dir> [--threads T] [--workers N] [--stats] [--cache] [--verify] \
             [--inject SEED] [--tape|--no-tape]"
                .into(),
        );
    };
    let archive = Archive::load(Path::new(dir))?;
    let threads = flag_num(&flags, "threads").unwrap_or(4);
    let config = DecoderConfig {
        threads,
        backend: Backend::Auto,
    };
    let dyn_code = archive.code.as_dyn();

    let (_, scenario) = archive.read_stripe(0);
    if scenario.is_empty() {
        println!("nothing to repair");
        return Ok(());
    }
    let want_stats = flags.contains_key("stats");
    let mut agg = StatsAgg::default();

    // Execution path: compiled instruction tape by default, --no-tape
    // falls back to the per-term graph walker (bit-identical output).
    let exec = match (flags.contains_key("tape"), flags.contains_key("no-tape")) {
        (true, true) => return Err("--tape and --no-tape are mutually exclusive".into()),
        (_, true) => ExecMode::Graph,
        _ => ExecMode::Tape,
    };

    let inject_seed = match flags.get("inject") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|e| format!("bad --inject seed: {e}"))?,
        ),
        None => None,
    };
    if let Some(workers) = flag_num(&flags, "workers") {
        if flags.contains_key("verify") || inject_seed.is_some() {
            return Err(
                "--workers cannot be combined with --verify/--inject (verified repair \
                 escalates per stripe and runs sequentially)"
                    .into(),
            );
        }
        return repair_workers(
            &archive, dyn_code, config, &scenario, want_stats, workers, exec,
        );
    }
    if flags.contains_key("verify") {
        return repair_verified(
            &archive,
            dyn_code,
            config,
            &scenario,
            want_stats,
            inject_seed,
            exec,
        );
    }
    if inject_seed.is_some() {
        return Err(
            "--inject requires --verify: without verification the injected corruption \
             would be silently written back to the archive"
                .into(),
        );
    }

    if flags.contains_key("cache") {
        // Session path: the RepairService caches the plan by erasure
        // signature and recycles decode buffers, so stripes 1..N re-use
        // stripe 0's factorization.
        let service = RepairService::new(dyn_code, config).with_exec_mode(exec);
        let (plan, _) = service
            .plan_for(&scenario)
            .map_err(|e| format!("unrepairable: {e}"))?;
        println!(
            "repairing {} lost sectors/stripe (strategy {:?}, parallelism {}, {} mult_XORs/stripe, cached plan, {:?} execution)",
            scenario.len(),
            plan.strategy(),
            plan.parallelism(),
            plan.mult_xors(),
            exec
        );
        let predicted = plan.mult_xors();
        drop(plan);
        for s in 0..archive.stripes {
            let (mut stripe, lost) = archive.read_stripe(s);
            if lost != scenario {
                return Err(format!("stripe {s}: inconsistent failure pattern"));
            }
            let st = service
                .repair(&mut stripe, &scenario)
                .map_err(|e| e.to_string())?;
            if want_stats {
                agg.add(&st);
            }
            archive
                .write_stripe(s, &stripe)
                .map_err(|e| e.to_string())?;
        }
        if want_stats {
            println!("{}", agg.to_json(predicted));
        }
        let cs = service.cache_stats();
        println!(
            "repaired {} stripes (plan cache: {} hits / {} misses, {} scratch reuses)",
            archive.stripes,
            cs.hits,
            cs.misses,
            service.arena().reuses()
        );
        return Ok(());
    }

    let decoder = Decoder::new(config);
    let h = dyn_code.parity_check_matrix();
    let plan = decoder
        .plan(&h, &scenario, Strategy::PpmAuto)
        .map_err(|e| format!("unrepairable: {e}"))?;
    println!(
        "repairing {} lost sectors/stripe (strategy {:?}, parallelism {}, {} mult_XORs/stripe)",
        scenario.len(),
        plan.strategy(),
        plan.parallelism(),
        plan.mult_xors()
    );
    for s in 0..archive.stripes {
        let (mut stripe, lost) = archive.read_stripe(s);
        if lost != scenario {
            return Err(format!("stripe {s}: inconsistent failure pattern"));
        }
        if want_stats {
            let st = match exec {
                ExecMode::Tape => decoder.decode_tape_with_stats(&plan, &mut stripe),
                ExecMode::Graph => decoder.decode_with_stats(&plan, &mut stripe),
            }
            .map_err(|e| e.to_string())?;
            agg.add(&st);
        } else {
            match exec {
                ExecMode::Tape => decoder.decode_tape(&plan, &mut stripe),
                ExecMode::Graph => decoder.decode(&plan, &mut stripe),
            }
            .map_err(|e| e.to_string())?;
        }
        archive
            .write_stripe(s, &stripe)
            .map_err(|e| e.to_string())?;
    }
    if want_stats {
        println!("{}", agg.to_json(plan.mult_xors()));
    }
    println!("repaired {} stripes", archive.stripes);
    Ok(())
}

/// The `repair --workers N` path: every broken stripe is read into
/// memory and repaired through one shared [`RepairService`] session via
/// `repair_batch`, which splits the job across `N` worker threads
/// (inter-stripe when the batch is large enough, intra-stripe
/// otherwise) against the sharded plan cache and scratch arena.
fn repair_workers(
    archive: &Archive,
    dyn_code: &dyn ErasureCode<u8>,
    config: DecoderConfig,
    scenario: &FailureScenario,
    want_stats: bool,
    workers: usize,
    exec: ExecMode,
) -> Result<(), String> {
    let service = RepairService::new(dyn_code, config).with_exec_mode(exec);
    let (plan, _) = service
        .plan_for(scenario)
        .map_err(|e| format!("unrepairable: {e}"))?;
    println!(
        "repairing {} lost sectors/stripe (strategy {:?}, parallelism {}, {} mult_XORs/stripe, {} workers)",
        scenario.len(),
        plan.strategy(),
        plan.parallelism(),
        plan.mult_xors(),
        workers.max(1)
    );
    let predicted = plan.mult_xors();
    drop(plan);

    let mut stripes = Vec::with_capacity(archive.stripes);
    for s in 0..archive.stripes {
        let (stripe, lost) = archive.read_stripe(s);
        if &lost != scenario {
            return Err(format!("stripe {s}: inconsistent failure pattern"));
        }
        stripes.push(stripe);
    }
    let report = service
        .repair_batch(&mut stripes, scenario, workers)
        .map_err(|e| e.to_string())?;
    for (s, stripe) in stripes.iter().enumerate() {
        archive.write_stripe(s, stripe).map_err(|e| e.to_string())?;
    }

    if want_stats {
        let mut agg = StatsAgg::default();
        for st in &report.stats {
            agg.add(st);
        }
        println!("{}", agg.to_json(predicted));
    }
    let cs = service.cache_stats();
    let ar = service.arena().stats();
    println!(
        "repaired {} stripes with {} workers ({} split) at {:.0} stripes/s \
         (plan cache: {} hits / {} misses / {} coalesced; arena: {} reuses / {} fresh / {} contended)",
        report.stripes(),
        report.workers,
        if report.inter_stripe {
            "inter-stripe"
        } else {
            "intra-stripe"
        },
        report.stripes_per_sec(),
        cs.hits,
        cs.misses,
        cs.coalesced,
        ar.reused,
        ar.fresh,
        ar.contended,
    );
    Ok(())
}

/// The `repair --verify` path: every recovered stripe is checked against
/// the surplus parity-check rows; violations trigger erasure escalation.
/// With `inject_seed`, one surviving sector per stripe is bit-flipped
/// first, and the run reports how many injections escalation located.
fn repair_verified(
    archive: &Archive,
    dyn_code: &dyn ErasureCode<u8>,
    config: DecoderConfig,
    scenario: &FailureScenario,
    want_stats: bool,
    inject_seed: Option<u64>,
    exec: ExecMode,
) -> Result<(), String> {
    let service = RepairService::new(dyn_code, config).with_exec_mode(exec);
    let (plan, _) = service
        .plan_for(scenario)
        .map_err(|e| format!("unrepairable: {e}"))?;
    println!(
        "repairing {} lost sectors/stripe with verification (strategy {:?}, {} surplus rows, {} verify mult_XORs/pass, escalation budget {})",
        scenario.len(),
        plan.strategy(),
        plan.verify_rows(),
        plan.verify_mult_xors(),
        service.fault_tolerance(),
    );
    if plan.verify_rows() == 0 {
        println!(
            "warning: the failure pattern consumes every parity-check row; \
             verification is vacuous and corruption undetectable"
        );
    }
    let predicted = plan.mult_xors();
    drop(plan);

    let mut injector = inject_seed.map(FaultInjector::new);
    let mut agg = StatsAgg::default();
    let (mut injected, mut located_exactly, mut escalations, mut extra_passes) = (0, 0, 0, 0);
    for s in 0..archive.stripes {
        let (mut stripe, lost) = archive.read_stripe(s);
        if &lost != scenario {
            return Err(format!("stripe {s}: inconsistent failure pattern"));
        }
        let flip = injector
            .as_mut()
            .map(|inj| inj.corrupt_survivor(&mut stripe, scenario));
        if flip.is_some() {
            injected += 1;
        }
        let st = service
            .repair_verified(&mut stripe, scenario)
            .map_err(|e| format!("stripe {s}: {e}"))?;
        if let Some(v) = &st.verify {
            escalations += v.escalations;
            extra_passes += v.passes.saturating_sub(1);
            if let Some(f) = &flip {
                if v.located == [f.sector] {
                    located_exactly += 1;
                }
            }
        }
        if want_stats {
            agg.add(&st);
        }
        archive
            .write_stripe(s, &stripe)
            .map_err(|e| e.to_string())?;
    }
    if want_stats {
        println!("{}", agg.to_json(predicted));
    }
    if let Some(seed) = inject_seed {
        println!(
            "fault injection (seed {seed}): {injected} stripes corrupted, {located_exactly} located exactly, {escalations} escalation decodes, {extra_passes} extra verify passes"
        );
    }
    let cs = service.cache_stats();
    println!(
        "repaired and verified {} stripes (plan cache: {} hits / {} misses, {} scratch reuses)",
        archive.stripes,
        cs.hits,
        cs.misses,
        service.arena().reuses()
    );
    Ok(())
}

/// Deterministic payload bytes for synthetic replay: xorshift64* keyed
/// by `(seed, op index)`, so buffered and naive runs of the same trace
/// write identical data without threading an RNG through the CLI.
fn payload_bytes(seed: u64, index: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        out.extend_from_slice(&x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    }
    out.truncate(len);
    out
}

fn cmd_update(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args);
    let [dir] = pos.as_slice() else {
        return Err(
            "usage: update <dir> (--trace FILE | --synth zipf|seq|uniform) [--ops N] \
             [--write-bytes B] [--policy lru|mmb|mms] [--buffer BYTES] [--workers N] \
             [--threads T] [--seed S] [--naive] [--stats]"
                .into(),
        );
    };
    let archive = Archive::load(Path::new(dir))?;
    let dyn_code = archive.code.as_dyn();
    let data_per_stripe = archive.data_per_stripe() as u64;
    let volume_bytes = data_per_stripe * archive.stripes as u64;

    let seed: u64 = match flags.get("seed") {
        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 2015,
    };
    let ops: Vec<TraceOp> = match (flags.get("trace"), flags.get("synth")) {
        (Some(path), None) => {
            let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_trace(&text).map_err(|e| format!("{path}: {e}"))?
        }
        (None, Some(spec)) => {
            let kind = SynthKind::parse(spec)
                .ok_or_else(|| format!("bad --synth {spec:?} (zipf[:SKEW], seq, uniform)"))?;
            let n = flag_num(&flags, "ops").unwrap_or(256);
            let write_bytes = flag_num(&flags, "write-bytes")
                .map(|b| b as u64)
                .unwrap_or_else(|| (archive.sector_bytes as u64 / 4).max(1))
                .min(volume_bytes);
            synthesize(kind, n, volume_bytes, write_bytes, seed)
        }
        (Some(_), Some(_)) => return Err("--trace and --synth are mutually exclusive".into()),
        (None, None) => return Err("update requires --trace FILE or --synth KIND".into()),
    };
    let policy = match flags.get("policy") {
        Some(p) => EvictionPolicy::parse(p).ok_or_else(|| format!("bad --policy {p:?}"))?,
        None => EvictionPolicy::Lru,
    };
    let buffer_bytes = flag_num(&flags, "buffer")
        .map(|b| b.max(1) as u64)
        .unwrap_or(1 << 20);
    let workers = flag_num(&flags, "workers").unwrap_or(1);
    let threads = flag_num(&flags, "threads").unwrap_or(4);
    let mode = if flags.contains_key("naive") {
        FlushMode::ReencodeOnly
    } else {
        FlushMode::Auto
    };

    // The whole archive must be healthy: updates patch parity in place,
    // so a missing device would silently diverge.
    let mut stripes = Vec::with_capacity(archive.stripes);
    for s in 0..archive.stripes {
        let (stripe, lost) = archive.read_stripe(s);
        if !lost.is_empty() {
            return Err(format!(
                "stripe {s}: {} sectors unavailable (run repair before update)",
                lost.len()
            ));
        }
        stripes.push(stripe);
    }

    let service = RepairService::new(
        dyn_code,
        DecoderConfig {
            threads,
            backend: Backend::Auto,
        },
    );
    let config = EngineConfig {
        buffer_bytes,
        policy,
        mode,
    };
    let mut engine =
        UpdateEngine::new(&service, stripes, config).map_err(|e| format!("update: {e}"))?;

    let started = std::time::Instant::now();
    let mut reports = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let payload = payload_bytes(seed, i as u64, op.len as usize);
        reports.extend(
            engine
                .write(op.offset, &payload)
                .map_err(|e| format!("op {i} (offset {}, len {}): {e}", op.offset, op.len))?,
        );
    }
    reports.extend(
        engine
            .flush_all(workers)
            .map_err(|e| format!("final flush: {e}"))?,
    );
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let reencode_cost = engine.reencode_mult_xors();
    let volume = engine.into_volume();
    for (s, stripe) in volume.iter().enumerate() {
        archive.write_stripe(s, stripe).map_err(|e| e.to_string())?;
    }

    if flags.contains_key("stats") {
        let executed: u64 = reports.iter().map(|r| r.exec.executed_mult_xors()).sum();
        let predicted: u64 = reports
            .iter()
            .map(|r| r.exec.predicted_mult_xors as u64)
            .sum();
        let matches = reports.iter().all(|r| r.exec.matches_prediction());
        let sample = reports.first().map(|r| r.exec.to_json());
        let ar = service.arena().stats();
        println!(
            "{{\"ops\":{},\"volume_bytes\":{},\"policy\":{:?},\"mode\":{:?},\"workers\":{},\
             \"engine\":{},\"predicted_mult_xors_total\":{},\"executed_mult_xors_total\":{},\
             \"matches_prediction\":{},\"reencode_mult_xors_per_stripe\":{},\
             \"arena\":{{\"reuses\":{},\"fresh\":{},\"contended\":{}}},\"nanos\":{},\"sample\":{}}}",
            ops.len(),
            volume_bytes,
            format!("{policy:?}").to_ascii_lowercase(),
            format!("{mode:?}").to_ascii_lowercase(),
            workers.max(1),
            stats.to_json(),
            predicted,
            executed,
            matches,
            reencode_cost,
            ar.reused,
            ar.fresh,
            ar.contended,
            elapsed.as_nanos(),
            sample.as_deref().unwrap_or("null"),
        );
    }
    println!(
        "replayed {} writes ({} bytes, {} coalesced) in {} flushes \
         ({} delta / {} re-encode, {} evictions, {} parity patches) in {:.1} ms",
        stats.writes,
        stats.bytes_written,
        stats.bytes_coalesced,
        stats.flushes,
        stats.delta_flushes,
        stats.reencode_flushes,
        stats.evictions,
        stats.parity_patches,
        elapsed.as_secs_f64() * 1e3,
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args);
    let [dir] = pos.as_slice() else {
        return Err("usage: verify <dir>".into());
    };
    let archive = Archive::load(Path::new(dir))?;
    let h = archive.code.as_dyn().parity_check_matrix();
    for s in 0..archive.stripes {
        let (stripe, lost) = archive.read_stripe(s);
        if !lost.is_empty() {
            return Err(format!(
                "stripe {s}: {} sectors unavailable (run repair)",
                lost.len()
            ));
        }
        if !parity_consistent(&h, &stripe, Backend::Auto) {
            return Err(format!("stripe {s}: parity check FAILED"));
        }
    }
    println!("all {} stripes parity-consistent", archive.stripes);
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args);
    let [dir, output] = pos.as_slice() else {
        return Err("usage: decode <dir> <output>".into());
    };
    let archive = Archive::load(Path::new(dir))?;
    let dyn_code = archive.code.as_dyn();
    let data_sectors = dyn_code.data_sectors();
    let mut out = Vec::with_capacity(archive.file_len as usize);
    for s in 0..archive.stripes {
        let (stripe, lost) = archive.read_stripe(s);
        if !lost.is_empty() {
            return Err(format!("stripe {s}: data unavailable (run repair first)"));
        }
        for &sector in &data_sectors {
            out.extend_from_slice(stripe.sector(sector));
        }
    }
    out.truncate(archive.file_len as usize);
    fs::write(output, &out).map_err(|e| e.to_string())?;
    println!("wrote {} bytes to {output}", out.len());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (_, pos) = split_flags(args);
    let [dir] = pos.as_slice() else {
        return Err("usage: info <dir>".into());
    };
    let archive = Archive::load(Path::new(dir))?;
    let dyn_code = archive.code.as_dyn();
    let layout = archive.layout();
    println!("code:         {}", dyn_code.name());
    println!(
        "devices:      {} ({} rows x {} B sectors)",
        layout.n, layout.r, archive.sector_bytes
    );
    println!("stripes:      {}", archive.stripes);
    println!("file length:  {} bytes", archive.file_len);
    println!("symmetric:    {}", dyn_code.is_symmetric());
    let missing: Vec<usize> = (0..layout.n)
        .filter(|&d| !archive.strip_path(d).exists())
        .collect();
    println!("missing:      {missing:?}");
    Ok(())
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("usage: cluster sim [--workers N] [--stripes M] ...".into());
    };
    match sub.as_str() {
        "sim" => cluster_sim(rest),
        other => Err(format!("unknown cluster subcommand {other:?} (try: sim)")),
    }
}

/// The `cluster sim` path: repair a simulated sharded archive over N
/// worker threads and check the result bit-for-bit against a
/// single-node repair. With `--mode both` (the default) the naive
/// ship-everything baseline runs on the same damage, and the summary
/// line reports the measured bandwidth ratio.
fn cluster_sim(args: &[String]) -> Result<(), String> {
    let (flags, pos) = split_flags(args);
    if !pos.is_empty() {
        return Err(format!(
            "cluster sim takes no positional arguments, got {pos:?}"
        ));
    }
    let spec = flags
        .get("code")
        .cloned()
        .unwrap_or_else(|| "sd:4,4,1,1".to_string());
    let code = Code::parse(&spec)?;
    let dyn_code = code.as_dyn();
    let parse_u64 = |name: &str, default: u64| -> Result<u64, String> {
        match flags.get(name) {
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
            None => Ok(default),
        }
    };
    let parse_rate = |name: &str| -> Result<f64, String> {
        match flags.get(name) {
            Some(v) => {
                let rate: f64 = v.parse().map_err(|e| format!("bad --{name}: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("bad --{name}: rate {rate} outside [0, 1]"));
                }
                Ok(rate)
            }
            None => Ok(0.0),
        }
    };
    let rates = ChaosRates {
        drop: parse_rate("drop")?,
        corrupt: parse_rate("corrupt")?,
        truncate: parse_rate("truncate")?,
        duplicate: parse_rate("duplicate")?,
        reorder: parse_rate("reorder")?,
        delay: parse_rate("delay")?,
        hang: parse_rate("hang")?,
    };
    let chaos = match flags.get("chaos") {
        Some(v) => Some(ChaosConfig {
            seed: v.parse().map_err(|e| format!("bad --chaos: {e}"))?,
            rates,
            delay_ms: parse_u64("delay-ms", 5)?,
        }),
        None if rates.total() > 0.0 => {
            return Err("fault rates need --chaos SEED to take effect".into())
        }
        None => None,
    };
    // Chaos runs default to the tight supervision profile; individual
    // knobs override either way.
    let mut retry = if chaos.is_some() {
        RetryPolicy::aggressive()
    } else {
        RetryPolicy::default()
    };
    if let Some(v) = flags.get("deadline") {
        retry.deadline_ms = v.parse().map_err(|e| format!("bad --deadline: {e}"))?;
    }
    if let Some(v) = flags.get("retries") {
        retry.max_attempts = v.parse().map_err(|e| format!("bad --retries: {e}"))?;
    }
    if let Some(v) = flags.get("hedge") {
        retry.hedge_after_ms = v.parse().map_err(|e| format!("bad --hedge: {e}"))?;
    }
    let cfg = SimConfig {
        workers: flag_num(&flags, "workers").unwrap_or(4),
        stripes: parse_u64("stripes", 1_000_000)?,
        damaged: flag_num(&flags, "damaged").unwrap_or(16),
        scenarios: flag_num(&flags, "scenarios").unwrap_or(3),
        sector_bytes: flag_num(&flags, "bytes").unwrap_or(4096),
        seed: parse_u64("seed", 2015)?,
        threads: flag_num(&flags, "threads").unwrap_or(1),
        frame_version: flag_num(&flags, "frame-version").unwrap_or(2) as u8,
        chaos,
        retry,
    };
    let mode = flags.get("mode").map(String::as_str).unwrap_or("both");

    let run = |mode: RepairMode| -> Result<SimReport, String> {
        run_sim(&dyn_code, &cfg, mode).map_err(|e| format!("{} sim: {e}", mode.name()))
    };
    let (partial, naive) = match mode {
        "partial" => (Some(run(RepairMode::Partial)?), None),
        "naive" => (None, Some(run(RepairMode::Naive)?)),
        "both" => (
            Some(run(RepairMode::Partial)?),
            Some(run(RepairMode::Naive)?),
        ),
        other => return Err(format!("bad --mode {other:?} (partial|naive|both)")),
    };

    if flags.contains_key("stats") {
        let json =
            |r: &Option<SimReport>| r.as_ref().map(SimReport::to_json).unwrap_or("null".into());
        println!(
            "{{\"code\":\"{spec}\",\"partial\":{},\"naive\":{}}}",
            json(&partial),
            json(&naive)
        );
    }

    let identical = partial.as_ref().map(|r| r.identical).unwrap_or(true)
        && naive.as_ref().map(|r| r.identical).unwrap_or(true);
    let mut line = format!(
        "cluster-sim code={spec} workers={} stripes={} damaged={} identical={identical}",
        cfg.workers, cfg.stripes, cfg.damaged
    );
    if let Some(p) = &partial {
        line.push_str(&format!(
            " partial_bytes={} plans_shipped={} plan_bytes={} split_rests={}",
            p.traffic.total_bytes(),
            p.plans_shipped,
            p.traffic.plan_bytes,
            p.split_rests
        ));
    }
    if let Some(n) = &naive {
        line.push_str(&format!(" naive_bytes={}", n.traffic.total_bytes()));
    }
    if let (Some(p), Some(n)) = (&partial, &naive) {
        line.push_str(&format!(
            " ratio={:.3}",
            p.traffic.total_bytes() as f64 / n.traffic.total_bytes() as f64
        ));
    }
    if let Some(chaos) = &cfg.chaos {
        let mut retries = 0u64;
        let mut timeouts = 0u64;
        let mut redispatches = 0u64;
        let mut degraded = 0u64;
        let mut corrupt_caught = 0u64;
        let mut injected = 0u64;
        let mut workers_dead = 0u64;
        for r in [&partial, &naive].into_iter().flatten() {
            retries += r.chaos.retries;
            timeouts += r.chaos.timeouts;
            redispatches += r.chaos.redispatches;
            degraded += r.chaos.degraded_local;
            corrupt_caught += r.chaos.corrupt_frames_caught;
            injected += r.chaos.injected.total();
            workers_dead += r.chaos.workers_declared_dead;
        }
        line.push_str(&format!(
            " chaos_seed={} injected={injected} retries={retries} timeouts={timeouts} \
             corrupt_caught={corrupt_caught} redispatches={redispatches} \
             degraded={degraded} workers_dead={workers_dead}",
            chaos.seed
        ));
    }
    println!("{line}");
    if !identical {
        return Err("cluster repair diverged from the single-node reference".into());
    }
    Ok(())
}

fn split_flags(args: &[String]) -> (std::collections::HashMap<String, String>, Vec<String>) {
    let mut flags = std::collections::HashMap::new();
    let mut pos = Vec::new();
    // Flags that take no value; everything else consumes the next token.
    const BOOLEAN: &[&str] = &["stats", "cache", "verify", "naive", "tape", "no-tape"];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if BOOLEAN.contains(&name) {
                String::new()
            } else {
                it.next().cloned().unwrap_or_default()
            };
            flags.insert(name.to_string(), value);
        } else {
            pos.push(a.clone());
        }
    }
    (flags, pos)
}

fn flag_num(flags: &std::collections::HashMap<String, String>, name: &str) -> Option<usize> {
    flags.get(name).and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: ppm-cli <encode|corrupt|repair|update|verify|decode|info|cluster> ...");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "encode" => cmd_encode(rest),
        "corrupt" => cmd_corrupt(rest),
        "repair" => cmd_repair(rest),
        "update" => cmd_update(rest),
        "verify" => cmd_verify(rest),
        "decode" => cmd_decode(rest),
        "info" => cmd_info(rest),
        "cluster" => cmd_cluster(rest),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
