//! **ppm** — a Rust implementation of the Partitioned and Parallel Matrix
//! (PPM) algorithm for accelerating the encoding/decoding of asymmetric
//! parity erasure codes (SD, PMDS, LRC), reproducing Li et al., ICPP 2015.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`gf`] — GF(2^8/16/32) arithmetic and SIMD `mult_XORs` region ops,
//! * [`matrix`] — dense matrix algebra over those fields,
//! * [`codes`] — SD / PMDS / LRC / RS / product / Hitchhiker-XOR
//!   parity-check constructions and failure scenarios, including
//!   correlated row-burst and disk-group (rack) generators,
//! * [`stripe`] — sector buffers and workload generation,
//! * [`core`] — the PPM algorithm (log table, partition, cost model
//!   `C₁..C₄`, bounded-thread parallel decode), the traditional
//!   baseline, and the verified-repair pipeline (surplus-row parity
//!   checks with erasure escalation),
//! * [`faults`] — deterministic seeded fault injection for exercising
//!   that pipeline,
//! * [`update`] — the trace-driven small-write path: coalescing dirty
//!   ranges, a bounded eviction buffer, and a flush engine that picks
//!   delta-parity patching or full re-encode per flush by the §III-B
//!   cost model,
//! * [`cluster`] — coordinator/worker repair over a simulated sharded
//!   archive: serializable [`WirePlan`]s travel to the data, workers
//!   run phase A locally, and only partial-sum blocks cross the wire.
//!
//! The most common items are re-exported at the crate root; start with
//! [`Decoder`] and an erasure code from [`codes`].
//!
//! # Quickstart
//!
//! ```
//! use ppm::{encode, Decoder, DecoderConfig, ErasureCode, FailureScenario, SdCode, Strategy};
//! use ppm::stripe::random_data_stripe;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // An SD code over GF(2^8): 6 disks x 8 rows, 2 parity disks, 2 sector
//! // parities, with coefficients found by search.
//! let code = SdCode::<u8>::search(6, 8, 2, 2, 42, 4).unwrap();
//! let decoder = Decoder::new(DecoderConfig::default());
//!
//! // Encode a random stripe.
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut stripe = random_data_stripe(&code, 4096, &mut rng);
//! encode(&code, &decoder, &mut stripe).unwrap();
//! let pristine = stripe.clone();
//!
//! // Fail 2 disks + 2 extra sectors (the paper's worst case), then decode.
//! let scenario = code.decodable_worst_case(1, &mut rng, 100).unwrap();
//! stripe.erase(&scenario);
//! let h = code.parity_check_matrix();
//! let plan = decoder.plan(&h, &scenario, Strategy::PpmAuto).unwrap();
//! decoder.decode(&plan, &mut stripe).unwrap();
//! assert_eq!(stripe, pristine);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppm_cluster as cluster;
pub use ppm_codes as codes;
pub use ppm_core as core;
pub use ppm_faults as faults;
pub use ppm_gf as gf;
pub use ppm_matrix as matrix;
pub use ppm_stripe as stripe;
pub use ppm_update as update;

pub use ppm_cluster::{
    run_sim, ChaosConfig, ChaosRates, ChaosStats, ChaosTransport, ClusterError, CoordinatorRequest,
    RepairMode, RetryPolicy, SimConfig, SimReport, Transport, Worker, WorkerResponse,
};
pub use ppm_codes::{
    CodeError, ErasureCode, EvenOddCode, FailureScenario, HitchhikerXor, LrcCode, ParityKind,
    PmdsCode, ProductCode, RdpCode, RsCode, ScenarioError, SdCode, StarCode, StripeLayout,
};
pub use ppm_core::{
    cost, encode, parity_consistent, ArenaStats, BatchReport, CalcSequence, DecodeError,
    DecodePlan, Decoder, DecoderConfig, ExecMode, ExecStats, ExecutableWirePlan, Executor,
    LogTable, ParallelismCase, Partition, PlanCache, PlanCacheStats, PlanKey, PlanTape, Planner,
    RepairError, RepairService, ScratchArena, Strategy, SubPlanStats, UpdatePlan, UpdateStats,
    VerifyReport, VerifyStats, WireError, WirePartials, WirePlan,
};
pub use ppm_faults::{BitFlip, FaultInjector};
pub use ppm_gf::{Backend, GfWord, RegionMul};
pub use ppm_matrix::{Factorization, Matrix};
pub use ppm_stripe::Stripe;
pub use ppm_update::{
    DirtyBuffer, EngineConfig, EngineStats, EvictionPolicy, FlushMode, FlushReport, RangeSet,
    UpdateEngine, UpdateError,
};
